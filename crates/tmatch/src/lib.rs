//! Template matching for behavioral synthesis.
//!
//! "In template mapping at the behavioral level, groups of primitive
//! operations are replaced with more complex and specialized hardware units"
//! (paper §IV-B). This crate implements the substrate the template-matching
//! watermark is built on:
//!
//! * [`Template`] / [`Library`] — modules as rooted operation trees.
//! * [`find_matches`] — exhaustive enumeration of node-to-module matchings,
//!   the `M` list of the paper's Fig. 5 pseudocode.
//! * [`cover`] — covering the CDFG with modules (minimizing module count)
//!   under pseudo-primary-output (PPO) visibility constraints and forced
//!   matchings.
//! * [`count_cover_solutions`] — the paper's `Solutions(m)` function: the
//!   number of distinct ways the nodes covered by an enforced template can
//!   be covered, which drives the coincidence probability
//!   `P_c ≈ Π Solutions(m_i)⁻¹`.
//!
//! # Example
//!
//! ```
//! use localwm_cdfg::designs::iir4_parallel;
//! use localwm_tmatch::{cover, find_matches, CoverConstraints, Library};
//!
//! let g = iir4_parallel();
//! let lib = Library::dsp_default();
//! let matches = find_matches(&g, &lib);
//! assert!(!matches.is_empty());
//! let solution = cover(&g, &lib, &CoverConstraints::default());
//! assert!(solution.module_count() < g.op_count()); // templates helped
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cover;
mod library;
mod matcher;
mod solutions;
mod template;

pub use cover::{cover, cover_in, CoverConstraints, Covering};
pub use library::Library;
pub use matcher::{find_matches, find_matches_in, find_matches_rooted, Match};
pub use solutions::count_cover_solutions;
pub use template::Template;
