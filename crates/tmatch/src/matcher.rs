//! Exhaustive enumeration of node-to-module matchings.

use localwm_cdfg::{Cdfg, NodeId};

use crate::{Library, Template};

/// One matching: an instance of a library template over concrete CDFG
/// nodes — the paper's `m = {(n ⋈ O)^{|m|}}` pair set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Match {
    /// Index of the template in the library.
    pub template: usize,
    /// `nodes[pos]` is the CDFG node matched to template position `pos`
    /// (position 0 = root).
    pub nodes: Vec<NodeId>,
}

impl Match {
    /// The node matched to the template root (the module output).
    pub fn root(&self) -> NodeId {
        self.nodes[0]
    }

    /// Nodes *internal* to the module (every non-root position): their
    /// values disappear inside the specialized unit.
    pub fn internal_nodes(&self) -> &[NodeId] {
        &self.nodes[1..]
    }

    /// Whether the matching covers a node.
    pub fn covers(&self, n: NodeId) -> bool {
        self.nodes.contains(&n)
    }
}

/// Enumerates **all** matchings of every library template anywhere in the
/// graph, in deterministic order (by root node id, then template index,
/// then operand assignment order).
///
/// A template position `p` with parent `q` matches node `n` feeding node
/// `m` iff `kind(n) == kind(p)`, there is a data edge `n → m`, and — for
/// internal positions — `n`'s value has no other consumer (the value is
/// absorbed into the module, so external fanout would break the netlist).
///
/// Complexity is `O(|N| · λ)` template-root trials as the paper states,
/// each expanding a constant-size operand tree.
pub fn find_matches(g: &Cdfg, lib: &Library) -> Vec<Match> {
    let mut out = Vec::new();
    for root in g.node_ids() {
        out.extend(find_matches_rooted(g, lib, root));
    }
    out
}

/// [`find_matches`] against a shared [`localwm_engine::DesignContext`].
pub fn find_matches_in(ctx: &localwm_engine::DesignContext, lib: &Library) -> Vec<Match> {
    find_matches(ctx.graph(), lib)
}

/// Enumerates all matchings whose *root* is a specific node.
pub fn find_matches_rooted(g: &Cdfg, lib: &Library, root: NodeId) -> Vec<Match> {
    let mut out = Vec::new();
    for (ti, t) in lib.templates().iter().enumerate() {
        if g.kind(root) != t.kind(0) {
            continue;
        }
        let mut assignment: Vec<Option<NodeId>> = vec![None; t.len()];
        assignment[0] = Some(root);
        extend(g, t, ti, 1, &mut assignment, &mut out);
    }
    // Operand permutations of commutative siblings produce matchings that
    // cover the same node set with the same template: keep one.
    let mut seen: Vec<(usize, Vec<NodeId>)> = Vec::new();
    out.retain(|m| {
        let mut key = m.nodes.clone();
        key.sort_unstable();
        let key = (m.template, key);
        if seen.contains(&key) {
            false
        } else {
            seen.push(key);
            true
        }
    });
    out
}

/// Recursively assigns template position `pos` (positions are created in
/// parent-before-child order, so all parents are already assigned).
fn extend(
    g: &Cdfg,
    t: &Template,
    ti: usize,
    pos: usize,
    assignment: &mut Vec<Option<NodeId>>,
    out: &mut Vec<Match>,
) {
    if pos == t.len() {
        out.push(Match {
            template: ti,
            nodes: assignment.iter().map(|a| a.expect("complete")).collect(),
        });
        return;
    }
    let parent_pos = t.parent(pos).expect("non-root positions have parents");
    let parent_node = assignment[parent_pos].expect("parents assigned first");
    // Candidate operands: data preds of the parent's node with the right
    // kind, absorbed fanout, and not already used in this assignment.
    let mut candidates: Vec<NodeId> = g
        .data_preds(parent_node)
        .filter(|&c| g.kind(c) == t.kind(pos))
        .filter(|&c| g.data_succs(c).count() == 1)
        .filter(|&c| !assignment.iter().flatten().any(|&used| used == c))
        .collect();
    candidates.sort_unstable();
    candidates.dedup();
    for c in candidates {
        assignment[pos] = Some(c);
        extend(g, t, ti, pos + 1, assignment, out);
        assignment[pos] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::designs::iir4_parallel;
    use localwm_cdfg::{Cdfg, OpKind};

    /// x, y inputs; m = mul(x, y); s = add(m, z). A classic MAC site.
    fn mac_site() -> (Cdfg, NodeId, NodeId) {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let y = g.add_node(OpKind::Input);
        let z = g.add_node(OpKind::Input);
        let m = g.add_node(OpKind::Mul);
        let s = g.add_node(OpKind::Add);
        let o = g.add_node(OpKind::Output);
        g.add_data_edge(x, m).unwrap();
        g.add_data_edge(y, m).unwrap();
        g.add_data_edge(m, s).unwrap();
        g.add_data_edge(z, s).unwrap();
        g.add_data_edge(s, o).unwrap();
        (g, m, s)
    }

    #[test]
    fn finds_the_mac() {
        let (g, m, s) = mac_site();
        let lib = Library::dsp_default();
        let matches = find_matches(&g, &lib);
        let mac = matches
            .iter()
            .find(|mm| lib.template(mm.template).name() == "mac")
            .expect("mac should match");
        assert_eq!(mac.root(), s);
        assert_eq!(mac.internal_nodes(), &[m]);
    }

    #[test]
    fn external_fanout_blocks_internal_absorption() {
        let (mut g, m, _) = mac_site();
        // Give the multiply a second consumer: it can no longer be hidden.
        let extra = g.add_node(OpKind::Not);
        g.add_data_edge(m, extra).unwrap();
        let lib = Library::dsp_default();
        let matches = find_matches(&g, &lib);
        assert!(
            matches
                .iter()
                .all(|mm| lib.template(mm.template).name() != "mac"),
            "mac must not match once the product escapes"
        );
    }

    #[test]
    fn rooted_enumeration_is_a_filter_of_global() {
        let g = iir4_parallel();
        let lib = Library::dsp_default();
        let all = find_matches(&g, &lib);
        let a9 = g.node_by_name("A9").unwrap();
        let rooted = find_matches_rooted(&g, &lib, a9);
        let filtered: Vec<&Match> = all.iter().filter(|m| m.root() == a9).collect();
        assert_eq!(rooted.len(), filtered.len());
    }

    #[test]
    fn iir4_has_cmac_matches() {
        let g = iir4_parallel();
        let lib = Library::dsp_default();
        let matches = find_matches(&g, &lib);
        let cmacs = matches
            .iter()
            .filter(|m| lib.template(m.template).name() == "cmac")
            .count();
        // Every section add consumes a single-fanout cmul: 8 cmac sites.
        assert_eq!(cmacs, 8);
    }

    #[test]
    fn assignments_never_reuse_a_node() {
        let g = iir4_parallel();
        let matches = find_matches(&g, &Library::dsp_default());
        for m in matches {
            let mut ns = m.nodes.clone();
            ns.sort_unstable();
            ns.dedup();
            assert_eq!(ns.len(), m.nodes.len(), "duplicate node in match");
        }
    }

    #[test]
    fn deterministic_order() {
        let g = iir4_parallel();
        let lib = Library::dsp_default();
        assert_eq!(find_matches(&g, &lib), find_matches(&g, &lib));
    }
}
