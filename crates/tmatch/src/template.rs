//! Module templates as rooted operation trees.

use localwm_cdfg::OpKind;

/// A template: a rooted tree of operations implemented by one specialized
/// hardware module. "A module is defined as a set of operation trees. Each
/// operation in each module is uniquely identified" (paper §IV-B).
///
/// Position 0 is always the root (the module's output operation); every
/// other position names its parent, forming the operand tree. Leaf operands
/// of the tree are the module's external inputs.
///
/// ```
/// use localwm_cdfg::OpKind;
/// use localwm_tmatch::Template;
///
/// // A two-adder module: add(add(a, b), c).
/// let t = Template::chain("add2", &[OpKind::Add, OpKind::Add]);
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.kind(0), OpKind::Add);
/// assert_eq!(t.parent(1), Some(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    name: String,
    kinds: Vec<OpKind>,
    /// `parent[i]` for i > 0; the root has no parent.
    parents: Vec<Option<usize>>,
}

impl Template {
    /// Creates a template from explicit structure.
    ///
    /// `ops[i] = (kind, parent)`; entry 0 must be the root with
    /// `parent == None`; each other entry's parent must be an earlier index.
    ///
    /// # Panics
    ///
    /// Panics on an empty template, a non-root first entry, a rooted
    /// non-first entry, or a forward parent reference.
    pub fn new(name: &str, ops: &[(OpKind, Option<usize>)]) -> Self {
        assert!(!ops.is_empty(), "a template needs at least one operation");
        assert!(ops[0].1.is_none(), "entry 0 must be the root");
        for (i, &(_, p)) in ops.iter().enumerate().skip(1) {
            let p = p.expect("non-root entries need a parent");
            assert!(p < i, "parent references must point backwards");
        }
        Template {
            name: name.to_owned(),
            kinds: ops.iter().map(|&(k, _)| k).collect(),
            parents: ops.iter().map(|&(_, p)| p).collect(),
        }
    }

    /// A linear chain template: `kinds[0]` is the root, each subsequent
    /// operation feeds the previous one.
    pub fn chain(name: &str, kinds: &[OpKind]) -> Self {
        let ops: Vec<(OpKind, Option<usize>)> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, if i == 0 { None } else { Some(i - 1) }))
            .collect();
        Template::new(name, &ops)
    }

    /// Template name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operations in the template.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the template is a single operation.
    pub fn is_empty(&self) -> bool {
        false // a template always has at least one op (enforced in new)
    }

    /// Operation kind at a position.
    pub fn kind(&self, pos: usize) -> OpKind {
        self.kinds[pos]
    }

    /// Parent position (`None` for the root).
    pub fn parent(&self, pos: usize) -> Option<usize> {
        self.parents[pos]
    }

    /// Child positions of a position.
    pub fn children(&self, pos: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.parents[i] == Some(pos))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_structure() {
        let t = Template::chain("mac", &[OpKind::Add, OpKind::Mul]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.kind(0), OpKind::Add);
        assert_eq!(t.kind(1), OpKind::Mul);
        assert_eq!(t.parent(0), None);
        assert_eq!(t.parent(1), Some(0));
        assert_eq!(t.children(0), vec![1]);
        assert!(t.children(1).is_empty());
    }

    #[test]
    fn branching_template() {
        // add(mul(..), mul(..))
        let t = Template::new(
            "dual-mac",
            &[
                (OpKind::Add, None),
                (OpKind::Mul, Some(0)),
                (OpKind::Mul, Some(0)),
            ],
        );
        assert_eq!(t.children(0), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one operation")]
    fn empty_template_panics() {
        let _ = Template::new("empty", &[]);
    }

    #[test]
    #[should_panic(expected = "entry 0 must be the root")]
    fn rooted_non_first_panics() {
        let _ = Template::new("bad", &[(OpKind::Add, Some(0))]);
    }

    #[test]
    #[should_panic(expected = "point backwards")]
    fn forward_parent_panics() {
        let _ = Template::new(
            "bad",
            &[
                (OpKind::Add, None),
                (OpKind::Mul, Some(2)),
                (OpKind::Mul, Some(0)),
            ],
        );
    }
}
