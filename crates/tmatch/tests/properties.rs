//! Property-based tests for matching and covering.

use localwm_cdfg::generators::{layered, LayeredConfig};
use localwm_cdfg::NodeId;
use localwm_tmatch::{cover, find_matches, CoverConstraints, Library};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every matching is structurally sound: kinds line up, internal
    /// nodes feed only their consumer, nodes are distinct.
    #[test]
    fn matches_are_sound(ops in 20usize..150, seed in 0u64..500) {
        let g = layered(&LayeredConfig {
            ops,
            layers: (ops / 8).max(1),
            seed,
            ..Default::default()
        });
        let lib = Library::dsp_default();
        for m in find_matches(&g, &lib) {
            let t = lib.template(m.template);
            prop_assert_eq!(m.nodes.len(), t.len());
            let mut uniq = m.nodes.clone();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), m.nodes.len());
            for (pos, &node) in m.nodes.iter().enumerate() {
                prop_assert_eq!(g.kind(node), t.kind(pos));
                if let Some(parent) = t.parent(pos) {
                    let parent_node = m.nodes[parent];
                    prop_assert!(g.data_preds(parent_node).any(|x| x == node));
                    prop_assert_eq!(g.data_succs(node).count(), 1);
                }
            }
        }
    }

    /// A covering partitions the schedulable operations exactly.
    #[test]
    fn covering_is_a_partition(ops in 20usize..150, seed in 0u64..500) {
        let g = layered(&LayeredConfig {
            ops,
            layers: (ops / 8).max(1),
            seed,
            ..Default::default()
        });
        let lib = Library::dsp_default();
        let c = cover(&g, &lib, &CoverConstraints::default());
        let mut covered: HashSet<NodeId> = HashSet::new();
        for m in &c.selected {
            for &n in &m.nodes {
                prop_assert!(covered.insert(n), "{n} covered twice");
            }
        }
        for &n in &c.singletons {
            prop_assert!(covered.insert(n), "{n} covered twice");
        }
        let all: HashSet<NodeId> = g
            .node_ids()
            .filter(|&n| g.kind(n).is_schedulable())
            .collect();
        prop_assert_eq!(covered, all);
    }

    /// Adding PPOs never decreases the module count, and the constrained
    /// covering never hides a PPO internally.
    #[test]
    fn ppos_only_hurt(ops in 20usize..120, seed in 0u64..300, n_ppos in 0usize..8) {
        let g = layered(&LayeredConfig {
            ops,
            layers: (ops / 8).max(1),
            seed,
            ..Default::default()
        });
        let lib = Library::dsp_default();
        let free = cover(&g, &lib, &CoverConstraints::default());
        let schedulable: Vec<NodeId> = g
            .node_ids()
            .filter(|&n| g.kind(n).is_schedulable())
            .collect();
        let ppos: Vec<NodeId> = schedulable
            .iter()
            .step_by((schedulable.len() / n_ppos.max(1)).max(1))
            .copied()
            .take(n_ppos)
            .collect();
        let constrained = cover(
            &g,
            &lib,
            &CoverConstraints { ppos: ppos.clone(), forced: Vec::new() },
        );
        prop_assert!(constrained.module_count() >= free.module_count());
        for m in &constrained.selected {
            for &n in m.internal_nodes() {
                prop_assert!(!ppos.contains(&n), "PPO {n} hidden internally");
            }
        }
    }
}
