//! Property-based tests for the timing analyses.

use localwm_cdfg::generators::{layered, random_dag, LayeredConfig};
use localwm_cdfg::{EdgeKind, NodeId};
use localwm_engine::Parallelism;
use localwm_timing::{
    bounded_arrival, bounded_critical_path, criticality_in, with_soa_lanes, CriticalityCache,
    DesignContext, KindBounds, UnitTiming,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// depth/tail invariants: laxity is bounded by the critical path and
    /// attained by at least one node.
    #[test]
    fn laxity_bounds(n in 2usize..80, p in 0.0f64..0.4, seed in 0u64..1000) {
        let g = random_dag(n, p, seed);
        let t = UnitTiming::new(&g);
        let cp = t.critical_path();
        let mut attained = false;
        for v in g.node_ids() {
            let l = t.laxity(v);
            prop_assert!(l <= cp);
            attained |= l == cp;
        }
        prop_assert!(attained, "some node must lie on the critical path");
    }

    /// ALAP is monotone in the deadline; ASAP never exceeds ALAP at any
    /// feasible deadline.
    #[test]
    fn alap_monotone(n in 2usize..60, p in 0.0f64..0.4, seed in 0u64..1000) {
        let g = random_dag(n, p, seed);
        let t = UnitTiming::new(&g);
        let cp = t.critical_path();
        for v in g.node_ids() {
            let mut prev = 0u32;
            for extra in 0..4u32 {
                let alap = t.alap(v, cp + extra);
                prop_assert!(t.asap(v) <= alap);
                prop_assert!(alap >= prev);
                prev = alap;
            }
        }
    }

    /// Incremental edge update equals a fresh rebuild for every node.
    #[test]
    fn incremental_equals_rebuild(seed in 0u64..500) {
        let g0 = layered(&LayeredConfig { ops: 80, layers: 8, seed, ..Default::default() });
        let nodes: Vec<NodeId> = g0
            .node_ids()
            .filter(|&v| g0.kind(v).is_schedulable())
            .collect();
        let (a, b) = (nodes[nodes.len() / 5], nodes[4 * nodes.len() / 5]);
        prop_assume!(!g0.reaches(a, b) && !g0.reaches(b, a));
        let mut g = g0.clone();
        let mut inc = UnitTiming::new(&g);
        g.add_temporal_edge(a, b).expect("incomparable");
        inc.add_edge_update(&g, a, b);
        let fresh = UnitTiming::new(&g);
        prop_assert_eq!(inc.critical_path(), fresh.critical_path());
        for v in g.node_ids() {
            prop_assert_eq!(inc.asap(v), fresh.asap(v));
            prop_assert_eq!(inc.tail(v), fresh.tail(v));
            prop_assert_eq!(inc.laxity(v), fresh.laxity(v));
        }
    }

    /// The staleness contract of the cross-mutation criticality cache: no
    /// interleaving of tracked mutations (temporal-edge adds, edge
    /// removals) and queries can make a cached report diverge from a
    /// from-scratch run on the current graph. This is the external
    /// `generation()`/`dirty_since()` consumer the engine's dirty
    /// tracking exists for, driven through the same mutate path sessions
    /// use.
    #[test]
    fn criticality_cache_never_stale_under_interleaving(
        n in 10usize..40,
        p in 0.08f64..0.3,
        seed in 0u64..500,
        schedule in proptest::collection::vec(0u8..=255, 2..16),
    ) {
        let g = random_dag(n, p, seed);
        let mut ctx = DesignContext::new(g);
        let model = KindBounds::uniform(1, 4);
        let mut cache = CriticalityCache::new();
        for (i, &code) in schedule.iter().enumerate() {
            match code % 4 {
                0 => {
                    // Temporal-edge add, forward in the current order so it
                    // can never create a cycle.
                    let order = ctx.topo().to_vec();
                    let a = order[usize::from(code) % order.len()];
                    let b = order[(usize::from(code) + 1 + i) % order.len()];
                    if a != b && !ctx.reaches(a, b) && !ctx.reaches(b, a) {
                        prop_assert!(ctx.mutate(|ed| ed.add_edge(EdgeKind::Temporal, a, b)).is_ok());
                    }
                }
                1 => {
                    let edges: Vec<_> = ctx.graph().edge_ids().collect();
                    if !edges.is_empty() {
                        let victim = edges[usize::from(code) % edges.len()];
                        prop_assert!(ctx.mutate(|ed| ed.remove_edge(victim)).is_ok());
                    }
                }
                _ => {
                    let inc = cache.criticality_in(&ctx, &model, 32, 9, Parallelism::Serial);
                    let scratch = criticality_in(&ctx, &model, 32, 9, Parallelism::Serial);
                    prop_assert_eq!(inc.samples, scratch.samples);
                    prop_assert_eq!(&inc.delays, &scratch.delays);
                    prop_assert_eq!(&inc.criticality, &scratch.criticality);
                }
            }
        }
    }

    /// The SoA block kernel is byte-identical to the scalar path for any
    /// random CDFG, seed, sample count, and lane width — including widths
    /// that never divide the sample count (perpetual tail blocks) and
    /// widths larger than the whole run.
    #[test]
    fn soa_criticality_equals_scalar(
        n in 5usize..50,
        p in 0.05f64..0.35,
        seed in 0u64..1000,
        run_seed in 0u64..1000,
        samples in 1usize..70,
        lanes in 2usize..24,
    ) {
        let g = random_dag(n, p, seed);
        let ctx = DesignContext::new(g);
        let model = KindBounds::uniform(1, 4);
        let scalar = with_soa_lanes(1, || {
            criticality_in(&ctx, &model, samples, run_seed, Parallelism::Serial)
        });
        let soa = with_soa_lanes(lanes, || {
            criticality_in(&ctx, &model, samples, run_seed, Parallelism::Serial)
        });
        prop_assert_eq!(&scalar.delays, &soa.delays);
        prop_assert_eq!(&scalar.criticality, &soa.criticality);
    }

    /// Interval analysis: per-node finish intervals are ordered and the
    /// circuit interval scales linearly when the model scales.
    #[test]
    fn interval_scaling(n in 2usize..60, p in 0.0f64..0.4, seed in 0u64..1000) {
        let g = random_dag(n, p, seed);
        let one = bounded_critical_path(&g, &KindBounds::uniform(1, 2));
        let two = bounded_critical_path(&g, &KindBounds::uniform(2, 4));
        prop_assert_eq!(two.lo, 2 * one.lo);
        prop_assert_eq!(two.hi, 2 * one.hi);
        let arr = bounded_arrival(&g, &KindBounds::uniform(1, 2));
        for f in &arr.finish {
            prop_assert!(f.lo <= f.hi);
            prop_assert!(f.hi <= arr.critical_path.hi);
        }
    }

    /// Window overlap is symmetric and reflexive for schedulable nodes.
    #[test]
    fn overlap_symmetric(n in 2usize..50, p in 0.0f64..0.4, seed in 0u64..500) {
        let g = random_dag(n, p, seed);
        let t = UnitTiming::new(&g);
        let steps = t.critical_path() + 2;
        for u in g.node_ids() {
            prop_assert!(t.windows_overlap(u, u, steps));
            for v in g.node_ids() {
                prop_assert_eq!(
                    t.windows_overlap(u, v, steps),
                    t.windows_overlap(v, u, steps)
                );
            }
        }
    }
}
