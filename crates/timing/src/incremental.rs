//! Incremental Monte-Carlo criticality across mutations.
//!
//! A [`criticality_in`](crate::criticality_in) run is `O(samples · (V + E))`
//! and every interactive edit used to pay it from scratch. The expensive
//! parts of a sample are (a) the RNG draws and (b) the forward arrival
//! sweep — and after a small edit most of both are unchanged. This module
//! keeps the per-sample delay draws, finish times, tail lengths, and
//! criticality hit-sets alive in a [`CriticalityCache`] and, after an
//! edit, repairs them per sample (RNG-free) with value-driven worklists
//! seeded at the dirty nodes: a re-derive propagates to its neighbors
//! only when the value actually changed, so the work done is the size of
//! the *changed* region, not of any conservative cone around it.
//!
//! The backward half is cached in a circuit-independent form. The push
//! sweep in [`criticality_in`](crate::criticality_in) computes
//! `required[v] = circuit − tail[v]`, where `tail[v]` is the longest
//! delay path strictly below `v` (`max over successors s of d[s] +
//! tail[s]`, `0` at sinks) — the subtraction never saturates because
//! `d[v] + tail[v]` is a path suffix and so never exceeds the circuit
//! delay. A node is critical iff `finish[v] == required[v]`, i.e. iff
//! `finish[v] + tail[v] == circuit`. Tails depend only on the draws and
//! the graph structure — not on arrivals and not on the circuit delay —
//! so an edit that shifts the circuit delay costs one flat re-flagging
//! scan per sample instead of a full backward sweep.
//!
//! The cache is only reused when the replayed result is provably
//! byte-identical to a from-scratch run:
//!
//! * `samples` and `seed` match the captured run, and
//! * the node count is unchanged (edge-only edits), and
//! * the per-node delay bounds vector is **exactly** the captured one —
//!   this pins the per-sample RNG stream (draws happen in node-index
//!   order and fixed `lo == hi` intervals skip their draw), so the cached
//!   draws are the draws a fresh run would make, and
//! * the context can name the dirty node set since the captured
//!   generation ([`DesignContext::dirty_since`]).
//!
//! Anything else — new nodes, a bounds model whose intervals moved (e.g.
//! [`DynamicBounds`](crate::DynamicBounds) after an edge edit), an
//! untracked mutation — falls back to a full capture that mirrors
//! `criticality_in` exactly.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use localwm_engine::{DesignContext, Parallelism};

use crate::statistical::soa_sweep;
use crate::{criticality_in, CriticalityReport, DelayBounds, DelayInterval};

/// Largest `samples × nodes` product the cache will retain (three `u64`
/// lanes plus one `bool` per cell); past this, caching would cost more
/// memory than the recompute is worth and every query runs from scratch
/// uncached.
const CACHE_CELL_CAP: usize = 1_000_000;

/// Captured per-sample state of one criticality run.
struct Capture {
    samples: usize,
    seed: u64,
    /// Context generation the capture (or last patch) is current with.
    generation: u64,
    /// Node count at capture; a mismatch always invalidates.
    n: usize,
    /// Per-node delay bounds the draws were made under.
    bounds: Vec<DelayInterval>,
    /// Flattened `samples × n` delay draws, sample-major.
    d: Vec<u64>,
    /// Flattened `samples × n` finish times, sample-major.
    finish: Vec<u64>,
    /// Flattened `samples × n` tail lengths (longest delay path strictly
    /// below each node), sample-major; `required = circuit − tail`.
    tail: Vec<u64>,
    /// Flattened `samples × n` critical-node flags
    /// (`finish + tail == circuit`), sample-major; the per-sample detail
    /// behind `hits`.
    crit: Vec<bool>,
    /// Per-sample circuit delay (max finish), in sample order.
    circuit: Vec<u64>,
    /// Per-node critical-hit counts aggregated across samples.
    hits: Vec<u64>,
}

/// The report the captured aggregates already answer; every patch keeps
/// `circuit` and `hits` exact, so reporting is allocation plus a sort.
fn report_from(cap: &Capture) -> CriticalityReport {
    let mut delays = cap.circuit.clone();
    delays.sort_unstable();
    CriticalityReport {
        criticality: cap
            .hits
            .iter()
            .map(|&h| h as f64 / cap.samples as f64)
            .collect(),
        delays,
        samples: cap.samples,
    }
}

/// Memoized Monte-Carlo state that survives graph mutations.
///
/// Holds the last run's per-sample draws and arrival times; on requery
/// after an edit it patches only the dirty fan-out cone per sample. The
/// report returned is byte-identical to [`criticality_in`] on the current
/// graph in every case — the cache only changes how it is computed.
///
/// ```
/// use localwm_cdfg::designs::iir4_parallel;
/// use localwm_engine::Parallelism;
/// use localwm_timing::{criticality_in, CriticalityCache, DesignContext, KindBounds};
///
/// let mut ctx = DesignContext::new(iir4_parallel());
/// let mut cache = CriticalityCache::new();
/// let model = KindBounds::uniform(1, 3);
/// let first = cache.criticality_in(&ctx, &model, 64, 7, Parallelism::Serial);
/// // ... mutate ctx ...
/// let again = cache.criticality_in(&ctx, &model, 64, 7, Parallelism::Serial);
/// let scratch = criticality_in(&ctx, &model, 64, 7, Parallelism::Serial);
/// assert_eq!(again.delays, scratch.delays);
/// assert_eq!(first.delays, again.delays); // nothing changed here
/// ```
#[derive(Default)]
pub struct CriticalityCache {
    capture: Option<Capture>,
}

impl CriticalityCache {
    /// An empty cache; the first query always captures from scratch.
    pub fn new() -> Self {
        CriticalityCache::default()
    }

    /// Drops any captured state; the next query recaptures.
    pub fn clear(&mut self) {
        self.capture = None;
    }

    /// [`criticality_in`](crate::criticality_in) with cross-mutation
    /// memoization: patches the cached per-sample state over the dirty
    /// cone when provably byte-identical, recaptures otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic or `samples == 0`.
    pub fn criticality_in<M: DelayBounds>(
        &mut self,
        ctx: &DesignContext,
        model: &M,
        samples: usize,
        seed: u64,
        par: Parallelism,
    ) -> CriticalityReport {
        assert!(samples > 0, "at least one sample required");
        let g = ctx.graph();
        let n = g.node_count();
        if samples.saturating_mul(n) > CACHE_CELL_CAP {
            self.capture = None;
            return criticality_in(ctx, model, samples, seed, par);
        }
        let bounds: Vec<DelayInterval> = g.node_ids().map(|v| model.bounds(g, v)).collect();
        if let Some(report) = self.try_patch(ctx, samples, seed, &bounds) {
            ctx.probe().counter("timing.criticality.patch", 1);
            return report;
        }
        ctx.probe().counter("timing.criticality.capture", 1);
        self.capture_from_scratch(ctx, samples, seed, bounds)
    }

    /// The incremental path: `None` unless every byte-identity
    /// precondition holds and the dirty cone fits the context's limit.
    fn try_patch(
        &mut self,
        ctx: &DesignContext,
        samples: usize,
        seed: u64,
        bounds: &[DelayInterval],
    ) -> Option<CriticalityReport> {
        let cap = self.capture.as_mut()?;
        let n = ctx.graph().node_count();
        if cap.samples != samples || cap.seed != seed || cap.n != n || cap.bounds != bounds {
            return None;
        }
        let dirty = ctx.dirty_since(cap.generation)?;
        if dirty.is_empty() {
            cap.generation = ctx.generation();
            return Some(report_from(cap));
        }
        let order = ctx.try_topo().ok()?;
        let preds = ctx.preds_csr();
        let succs = ctx.succs_csr();
        // Node index → topo position, for worklist pushes below.
        let mut pos_of = vec![0usize; n];
        for (p, &v) in order.iter().enumerate() {
            pos_of[v.index()] = p;
        }
        let dirty_pos: Vec<usize> = dirty.iter().map(|&v| pos_of[v.index()]).collect();
        let mut queued = vec![false; n];
        let mut fwd: BinaryHeap<Reverse<usize>> = BinaryHeap::with_capacity(dirty_pos.len());
        let mut bwd: BinaryHeap<usize> = BinaryHeap::with_capacity(dirty_pos.len());
        let mut changed: Vec<usize> = Vec::new();

        for s in 0..samples {
            let base = s * n;
            let d = &cap.d[base..base + n];
            changed.clear();
            // Forward: arrivals re-derive from the edited nodes outward,
            // but only while the value actually changes. The min-heap pops
            // positions ascending, so every predecessor a re-derive reads
            // is either already settled this pass or untouched since the
            // capture — the order of the full sweep, restricted to where
            // it matters.
            {
                let finish = &mut cap.finish[base..base + n];
                for &p in &dirty_pos {
                    if !queued[p] {
                        queued[p] = true;
                        fwd.push(Reverse(p));
                    }
                }
                while let Some(Reverse(p)) = fwd.pop() {
                    queued[p] = false;
                    let v = order[p].index();
                    let mut arrive = 0u64;
                    for &pi in preds.row(p) {
                        arrive = arrive.max(finish[pi as usize]);
                    }
                    let f = arrive + d[v];
                    if f != finish[v] {
                        finish[v] = f;
                        changed.push(v);
                        for &si in succs.row(p) {
                            let sp = pos_of[si as usize];
                            if !queued[sp] {
                                queued[sp] = true;
                                fwd.push(Reverse(sp));
                            }
                        }
                    }
                }
            }
            // Backward: tails likewise, walking predecessors descending.
            {
                let tail = &mut cap.tail[base..base + n];
                for &p in &dirty_pos {
                    if !queued[p] {
                        queued[p] = true;
                        bwd.push(p);
                    }
                }
                while let Some(p) = bwd.pop() {
                    queued[p] = false;
                    let v = order[p].index();
                    let mut l = 0u64;
                    for &si in succs.row(p) {
                        l = l.max(d[si as usize] + tail[si as usize]);
                    }
                    if l != tail[v] {
                        tail[v] = l;
                        changed.push(v);
                        for &pi in preds.row(p) {
                            let pp = pos_of[pi as usize];
                            if !queued[pp] {
                                queued[pp] = true;
                                bwd.push(pp);
                            }
                        }
                    }
                }
            }
            // Criticality is `finish + tail == circuit`. With the circuit
            // delay unchanged, flags can flip only where finish or tail
            // moved; a circuit shift re-flags in one flat scan instead of
            // a full sweep.
            let finish = &cap.finish[base..base + n];
            let tail = &cap.tail[base..base + n];
            let circuit = finish.iter().copied().max().unwrap_or(0);
            if circuit != cap.circuit[s] {
                cap.circuit[s] = circuit;
                for v in 0..n {
                    let now = finish[v] + tail[v] == circuit;
                    if now != cap.crit[base + v] {
                        cap.crit[base + v] = now;
                        if now {
                            cap.hits[v] += 1;
                        } else {
                            cap.hits[v] -= 1;
                        }
                    }
                }
            } else {
                for &v in &changed {
                    let now = finish[v] + tail[v] == circuit;
                    if now != cap.crit[base + v] {
                        cap.crit[base + v] = now;
                        if now {
                            cap.hits[v] += 1;
                        } else {
                            cap.hits[v] -= 1;
                        }
                    }
                }
            }
        }
        cap.generation = ctx.generation();
        Some(report_from(cap))
    }

    /// The full path: one serial run through the shared SoA block kernel
    /// ([`soa_sweep`]) — the same code `criticality_in` times with, so the
    /// captured draws, finish times, and tail lengths are the scratch
    /// run's by construction (per-sample seeding makes partitioning and
    /// lane width irrelevant to the values). A transpose sink rotates each
    /// node-major lane block into the cache's sample-major arrays, which
    /// is the layout the per-sample patch worklists want.
    fn capture_from_scratch(
        &mut self,
        ctx: &DesignContext,
        samples: usize,
        seed: u64,
        bounds: Vec<DelayInterval>,
    ) -> CriticalityReport {
        let order = ctx.topo();
        let preds = ctx.preds_csr();
        let succs = ctx.succs_csr();
        let n = ctx.graph().node_count();

        let mut all_d = vec![0u64; samples * n];
        let mut all_finish = vec![0u64; samples * n];
        let mut all_tail = vec![0u64; samples * n];
        let mut all_crit = vec![false; samples * n];
        let mut hits = vec![0u64; n];
        let mut circuits = Vec::with_capacity(samples);
        let lanes = crate::statistical::soa_lanes();
        soa_sweep(
            order,
            preds,
            succs,
            &bounds,
            seed,
            0,
            samples,
            lanes,
            |blk| {
                for lane in 0..blk.k {
                    let base = (blk.s0 + lane) * n;
                    let circuit = blk.circuit[lane];
                    for v in 0..n {
                        let f = blk.finish[v * blk.lanes + lane];
                        let t = blk.tail[v * blk.lanes + lane];
                        all_d[base + v] = blk.d[v * blk.lanes + lane];
                        all_finish[base + v] = f;
                        all_tail[base + v] = t;
                        let hit = f + t == circuit;
                        all_crit[base + v] = hit;
                        hits[v] += u64::from(hit);
                    }
                    circuits.push(circuit);
                }
            },
        );
        self.capture = Some(Capture {
            samples,
            seed,
            generation: ctx.generation(),
            n,
            bounds,
            d: all_d,
            finish: all_finish,
            tail: all_tail,
            crit: all_crit,
            circuit: circuits,
            hits,
        });
        report_from(self.capture.as_ref().expect("just captured"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KindBounds;
    use localwm_cdfg::generators::random_dag;
    use localwm_cdfg::{EdgeKind, NodeId, OpKind};
    use localwm_engine::RecordingProbe;
    use std::sync::Arc;

    fn assert_reports_equal(a: &CriticalityReport, b: &CriticalityReport) {
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.delays, b.delays);
        assert_eq!(a.criticality, b.criticality);
    }

    #[test]
    fn patched_report_is_byte_identical_to_scratch_across_edits() {
        let probe = Arc::new(RecordingProbe::new());
        let mut ctx = DesignContext::new(random_dag(40, 0.12, 21)).with_probe(probe.clone());
        let model = KindBounds::uniform(1, 4);
        let mut cache = CriticalityCache::new();
        let first = cache.criticality_in(&ctx, &model, 80, 9, Parallelism::Serial);
        assert_reports_equal(
            &first,
            &criticality_in(&ctx, &model, 80, 9, Parallelism::Serial),
        );
        assert_eq!(probe.counter_value("timing.criticality.capture"), 1);

        // A run of edge edits, each followed by a cached query checked
        // against scratch.
        let order: Vec<NodeId> = ctx.topo().to_vec();
        let mut edited = 0;
        for i in 0..order.len() - 1 {
            let (a, b) = (order[i], order[i + 1]);
            if ctx.reaches(a, b) || ctx.reaches(b, a) {
                continue;
            }
            ctx.mutate(|g| g.add_edge(EdgeKind::Temporal, a, b))
                .expect("forward pair");
            edited += 1;
            let inc = cache.criticality_in(&ctx, &model, 80, 9, Parallelism::Serial);
            let scratch = criticality_in(&ctx, &model, 80, 9, Parallelism::Serial);
            assert_reports_equal(&inc, &scratch);
            if edited == 4 {
                break;
            }
        }
        assert!(edited > 0, "random DAG had no incomparable adjacent pair");
        assert_eq!(
            probe.counter_value("timing.criticality.patch"),
            edited,
            "every edge-only edit should take the patch path"
        );
        assert_eq!(probe.counter_value("timing.criticality.capture"), 1);
    }

    #[test]
    fn edge_removal_patches_and_matches_scratch() {
        let mut ctx = DesignContext::new(random_dag(30, 0.2, 5));
        let model = KindBounds::uniform(1, 3);
        let mut cache = CriticalityCache::new();
        let _ = cache.criticality_in(&ctx, &model, 60, 3, Parallelism::Serial);
        let victim = ctx.graph().edge_ids().next().expect("has edges");
        ctx.mutate(|g| g.remove_edge(victim)).expect("live edge");
        let inc = cache.criticality_in(&ctx, &model, 60, 3, Parallelism::Serial);
        let scratch = criticality_in(&ctx, &model, 60, 3, Parallelism::Serial);
        assert_reports_equal(&inc, &scratch);
    }

    #[test]
    fn node_addition_or_parameter_change_recaptures() {
        let probe = Arc::new(RecordingProbe::new());
        let mut ctx = DesignContext::new(random_dag(20, 0.2, 7)).with_probe(probe.clone());
        let model = KindBounds::uniform(1, 3);
        let mut cache = CriticalityCache::new();
        let _ = cache.criticality_in(&ctx, &model, 40, 1, Parallelism::Serial);
        // Different seed: full capture.
        let _ = cache.criticality_in(&ctx, &model, 40, 2, Parallelism::Serial);
        // Node added: bounds length changes, full capture.
        let anchor = ctx.topo()[0];
        ctx.mutate(|g| {
            let v = g.add_node(OpKind::Not);
            g.add_data_edge(anchor, v).expect("forward edge");
        });
        let inc = cache.criticality_in(&ctx, &model, 40, 2, Parallelism::Serial);
        let scratch = criticality_in(&ctx, &model, 40, 2, Parallelism::Serial);
        assert_reports_equal(&inc, &scratch);
        assert_eq!(probe.counter_value("timing.criticality.capture"), 3);
        assert_eq!(probe.counter_value("timing.criticality.patch"), 0);
    }

    #[test]
    fn untracked_mutation_recaptures() {
        let probe = Arc::new(RecordingProbe::new());
        let mut ctx = DesignContext::new(random_dag(20, 0.2, 11)).with_probe(probe.clone());
        let model = KindBounds::uniform(1, 3);
        let mut cache = CriticalityCache::new();
        let _ = cache.criticality_in(&ctx, &model, 40, 5, Parallelism::Serial);
        // graph_mut() hides the touched set: dirty_since must refuse and
        // the cache must fall back to capture.
        let victim = ctx.graph().edge_ids().next().expect("has edges");
        ctx.mutate(|g| g.graph_mut().remove_edge(victim))
            .expect("live edge");
        let inc = cache.criticality_in(&ctx, &model, 40, 5, Parallelism::Serial);
        let scratch = criticality_in(&ctx, &model, 40, 5, Parallelism::Serial);
        assert_reports_equal(&inc, &scratch);
        assert_eq!(probe.counter_value("timing.criticality.capture"), 2);
    }

    #[test]
    fn oversized_runs_bypass_the_cache() {
        let ctx = DesignContext::new(random_dag(50, 0.1, 2));
        let model = KindBounds::uniform(1, 3);
        let mut cache = CriticalityCache::new();
        let big = CACHE_CELL_CAP / 50 + 1;
        let r = cache.criticality_in(&ctx, &model, big, 1, Parallelism::Auto);
        assert_eq!(r.samples, big);
        assert!(cache.capture.is_none(), "oversized run must not be cached");
    }
}
