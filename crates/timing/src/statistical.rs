//! Statistical timing: Monte-Carlo criticality under bounded delays.
//!
//! The interval analysis of [`localwm_engine::bounded_arrival`] brackets the
//! true critical path; this module refines it with sampling: draw delay
//! assignments consistent with a [`DelayBounds`] model, time each sample,
//! and report per-node *criticality probabilities* (how often a node lies
//! on a zero-slack path) plus the sampled circuit-delay distribution.
//!
//! Each input vector (sample) is timed with its **own** per-sample RNG seed
//! derived from the run seed and the sample index, so the result is
//! independent of how samples are fanned out across worker threads: serial
//! and parallel sweeps are byte-identical.
//!
//! # The SoA kernel
//!
//! Samples are independent, so the sweep processes them `K` at a time in a
//! structure-of-arrays layout ([`soa_sweep`]): every per-node quantity
//! (delay draw, finish time, tail length) is a contiguous `K`-wide lane
//! row, and the forward/backward passes walk the memoized CSR once per
//! *block* doing branch-free `max`/`add` over whole lane rows — the shape
//! LLVM autovectorizes. Determinism is untouched because the lanes never
//! interact: lane `j` of a block starting at sample `s0` draws from
//! `sample_seed(seed, s0 + j)`, in node-index order with fixed (`lo ==
//! hi`) intervals skipping their draw — the exact RNG stream the scalar
//! loop used — and integer `max`/`add` have no rounding to reorder. `K =
//! 1` *is* the scalar loop, just spelled once. A run whose sample count
//! `K` does not divide ends with one short block that simply uses fewer
//! lanes.
//!
//! The backward pass caches circuit-independent **tails** (longest delay
//! path strictly below each node) instead of required times; a node is
//! critical iff `finish[v] + tail[v] == circuit`, which equals the
//! push-form `finish == required` test because `required[v] = circuit −
//! tail[v]` (see the proof in [`crate::CriticalityCache`]'s module docs).
//! This is also the form the incremental cache captures, so the cache's
//! from-scratch path reuses this kernel verbatim through a transpose sink.

use std::cell::Cell;
use std::time::Instant;

use localwm_cdfg::{Cdfg, Csr, NodeId};
use localwm_engine::{par_map, DesignContext, Parallelism};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{DelayBounds, DelayInterval};

/// Result of a Monte-Carlo timing run.
#[derive(Debug, Clone)]
pub struct CriticalityReport {
    /// Per node: fraction of samples in which it was critical.
    pub criticality: Vec<f64>,
    /// Sampled circuit delays, one per sample (sorted ascending).
    pub delays: Vec<u64>,
    /// Number of samples drawn.
    pub samples: usize,
}

impl CriticalityReport {
    /// Criticality probability of one node.
    pub fn probability(&self, n: NodeId) -> f64 {
        self.criticality[n.index()]
    }

    /// The `q`-quantile of the sampled circuit delay (`q ∈ [0, 1]`).
    ///
    /// Uses the **lower-rank** rule on the sorted sample vector: the result
    /// is `delays[floor((n - 1) · q)]`, the largest sampled delay whose rank
    /// fraction does not exceed `q`. The returned value is always one that
    /// was actually sampled, the mapping is monotone in `q`, `q = 0` is the
    /// minimum, and `q = 1` the maximum.
    ///
    /// # Panics
    ///
    /// Panics if no samples were drawn or `q` is out of range.
    pub fn delay_quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        assert!(!self.delays.is_empty(), "no samples drawn");
        let idx = ((self.delays.len() - 1) as f64 * q).floor() as usize;
        self.delays[idx]
    }

    /// Nodes whose criticality probability is at least `threshold`,
    /// ascending by id.
    pub fn critical_above(&self, threshold: f64) -> Vec<NodeId> {
        self.criticality
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p >= threshold)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }
}

/// Lane width the SoA kernel uses unless overridden: wide enough to fill a
/// 512-bit vector of `u64`, small enough that three `n × K` scratch rows
/// stay cache-resident for realistic designs.
const DEFAULT_SOA_LANES: usize = 8;

thread_local! {
    /// Per-thread lane-width override; `None` means [`DEFAULT_SOA_LANES`].
    static LANE_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Runs `f` with the SoA kernel's lane width pinned to `lanes` **on this
/// thread** (clamped to at least 1). The width is resolved once at each
/// `criticality*` entry point on the calling thread and carried into its
/// worker closures, so the override covers parallel sweeps started inside
/// `f` even though the workers run elsewhere.
///
/// Lane width never changes results — every width is byte-identical (the
/// differential oracles pin this) — only how many samples share a pass.
/// This hook exists so tests and oracle lanes can exercise specific widths
/// (`1` = the scalar path, a prime = perpetual tail blocks) without an
/// environment variable racing other threads.
pub fn with_soa_lanes<R>(lanes: usize, f: impl FnOnce() -> R) -> R {
    let prev = LANE_OVERRIDE.with(|c| c.replace(Some(lanes.max(1))));
    let result = f();
    LANE_OVERRIDE.with(|c| c.set(prev));
    result
}

/// The lane width in effect on the calling thread.
pub(crate) fn soa_lanes() -> usize {
    LANE_OVERRIDE
        .with(Cell::get)
        .unwrap_or(DEFAULT_SOA_LANES)
        .max(1)
}

/// One finished block of the SoA sweep, handed to the sink: `k` live lanes
/// (samples `s0 .. s0 + k`) in node-major rows of stride `lanes`. Quantity
/// `q` of node index `v` in lane `j` sits at `q[v * lanes + j]`.
pub(crate) struct SoaBlock<'a> {
    /// Sample index of lane 0.
    pub s0: usize,
    /// Live lanes in this block (`< lanes` only in a final short block).
    pub k: usize,
    /// Row stride.
    pub lanes: usize,
    /// Delay draws.
    pub d: &'a [u64],
    /// Forward finish times.
    pub finish: &'a [u64],
    /// Tail lengths (longest delay path strictly below the node).
    pub tail: &'a [u64],
    /// Per-lane circuit delay (max finish), indexed `0 .. k`.
    pub circuit: &'a [u64],
}

/// The Monte-Carlo inner loop: times samples `lo .. hi` of the run
/// `(seed, bounds)` in K-lane SoA blocks over the memoized CSR, calling
/// `sink` once per block. Single source of truth for the per-sample math —
/// the parallel sweep and the incremental cache's capture both drive it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn soa_sweep<F: FnMut(&SoaBlock)>(
    order: &[NodeId],
    preds: &Csr,
    succs: &Csr,
    bounds: &[DelayInterval],
    seed: u64,
    lo: usize,
    hi: usize,
    lanes: usize,
    mut sink: F,
) {
    let n = order.len();
    let mut d = vec![0u64; n * lanes];
    let mut finish = vec![0u64; n * lanes];
    let mut tail = vec![0u64; n * lanes];
    let mut circuit = vec![0u64; lanes];
    let mut acc = vec![0u64; lanes];
    let mut s = lo;
    while s < hi {
        let k = lanes.min(hi - s);
        if k < lanes {
            // Final short block: clear the dead lanes' draws so the
            // full-width arithmetic below stays bounded (their outputs are
            // never read).
            d.fill(0);
        }
        // One RNG per live lane, draws in node-index order with fixed
        // intervals skipping theirs — the historical per-sample stream.
        for lane in 0..k {
            let mut rng = StdRng::seed_from_u64(sample_seed(seed, (s + lane) as u64));
            for (i, b) in bounds.iter().enumerate() {
                d[i * lanes + lane] = if b.lo == b.hi {
                    b.lo
                } else {
                    rng.gen_range(b.lo..=b.hi)
                };
            }
        }
        circuit.fill(0);
        // Forward: arrivals in topo order, whole lane rows at a time.
        for (p, &v) in order.iter().enumerate() {
            let vi = v.index();
            acc.fill(0);
            for &pi in preds.row(p) {
                let row = &finish[pi as usize * lanes..][..lanes];
                for (a, &f) in acc.iter_mut().zip(row) {
                    *a = (*a).max(f);
                }
            }
            let drow = &d[vi * lanes..][..lanes];
            let frow = &mut finish[vi * lanes..][..lanes];
            for lane in 0..lanes {
                let f = acc[lane] + drow[lane];
                frow[lane] = f;
                circuit[lane] = circuit[lane].max(f);
            }
        }
        // Backward: tails in reverse topo order (successor rows sit at
        // later positions, already final this block).
        for p in (0..n).rev() {
            let vi = order[p].index();
            acc.fill(0);
            for &si in succs.row(p) {
                let si = si as usize;
                let drow = &d[si * lanes..][..lanes];
                let trow = &tail[si * lanes..][..lanes];
                for ((a, &dd), &tt) in acc.iter_mut().zip(drow).zip(trow) {
                    *a = (*a).max(dd + tt);
                }
            }
            tail[vi * lanes..][..lanes].copy_from_slice(&acc);
        }
        sink(&SoaBlock {
            s0: s,
            k,
            lanes,
            d: &d,
            finish: &finish,
            tail: &tail,
            circuit: &circuit,
        });
        s += k;
    }
}

/// Runs `samples` Monte-Carlo timing simulations of `g` under `model`,
/// drawing each node's delay uniformly from its interval.
///
/// Deterministic in `seed` (and independent of thread count — see
/// [`criticality_in`]). `O(samples · (V + E))` work.
///
/// # Panics
///
/// Panics if the graph is cyclic or `samples == 0`.
///
/// ```
/// use localwm_cdfg::designs::iir4_parallel;
/// use localwm_timing::{criticality, KindBounds};
///
/// let g = iir4_parallel();
/// let report = criticality(&g, &KindBounds::uniform(1, 3), 200, 7);
/// let a9 = g.node_by_name("A9").unwrap();
/// assert!(report.probability(a9) > 0.5); // the output add is usually critical
/// ```
pub fn criticality<M: DelayBounds>(
    g: &Cdfg,
    model: &M,
    samples: usize,
    seed: u64,
) -> CriticalityReport {
    criticality_in(
        &DesignContext::from(g),
        model,
        samples,
        seed,
        Parallelism::from_env(),
    )
}

/// [`criticality`] against a shared [`DesignContext`], fanning independent
/// input vectors across scoped worker threads per `par` and timing them
/// through the SoA block kernel ([`soa_sweep`]).
///
/// Per-sample seeding makes the output identical for every
/// [`Parallelism`] choice *and* every lane width ([`with_soa_lanes`]).
///
/// # Panics
///
/// Panics if the graph is cyclic or `samples == 0`.
pub fn criticality_in<M: DelayBounds>(
    ctx: &DesignContext,
    model: &M,
    samples: usize,
    seed: u64,
    par: Parallelism,
) -> CriticalityReport {
    assert!(samples > 0, "at least one sample required");
    let g = ctx.graph();
    let order = ctx.topo();
    // Flat CSR adjacency: each sweep below streams packed u32 neighbor rows
    // laid out in topo order instead of chasing EdgeId → Option<Edge>.
    let preds = ctx.preds_csr();
    let succs = ctx.succs_csr();
    let n = g.node_count();
    let bounds: Vec<DelayInterval> = g.node_ids().map(|v| model.bounds(g, v)).collect();
    let probe = ctx.probe();
    probe.counter("timing.criticality.samples", samples as u64);
    // Resolved here, on the calling thread, so a `with_soa_lanes` override
    // reaches the worker closures as a plain captured value.
    let lanes = soa_lanes();

    // Contiguous sample ranges, one per worker; per-sample seeds make the
    // partitioning irrelevant to the result.
    let workers = par.worker_count(samples);
    let chunk = samples.div_ceil(workers);
    let ranges: Vec<(usize, usize)> = (0..workers)
        .map(|w| (w * chunk, ((w + 1) * chunk).min(samples)))
        .filter(|&(lo, hi)| lo < hi)
        .collect();

    let sweep_start = Instant::now();
    let parts = par_map(par, &ranges, |_, &(lo, hi)| {
        let mut hits = vec![0u64; n];
        let mut delays = Vec::with_capacity(hi - lo);
        soa_sweep(order, preds, succs, &bounds, seed, lo, hi, lanes, |blk| {
            // Branch-free criticality count per node: a node is critical
            // in a lane iff finish + tail reaches that lane's circuit.
            for (v, slot) in hits.iter_mut().enumerate() {
                let frow = &blk.finish[v * blk.lanes..][..blk.lanes];
                let trow = &blk.tail[v * blk.lanes..][..blk.lanes];
                let mut hit = 0u64;
                for lane in 0..blk.k {
                    hit += u64::from(frow[lane] + trow[lane] == blk.circuit[lane]);
                }
                *slot += hit;
            }
            delays.extend_from_slice(&blk.circuit[..blk.k]);
        });
        (hits, delays)
    });
    let sweep_ns = u64::try_from(sweep_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    probe.timer_ns("timing.criticality", sweep_ns);
    probe.counter(
        "timing.criticality.ns_per_sample",
        sweep_ns / samples as u64,
    );

    let mut hits = vec![0u64; n];
    let mut delays = Vec::with_capacity(samples);
    for (part_hits, part_delays) in parts {
        for (h, p) in hits.iter_mut().zip(part_hits) {
            *h += p;
        }
        delays.extend(part_delays);
    }
    delays.sort_unstable();
    CriticalityReport {
        criticality: hits.iter().map(|&h| h as f64 / samples as f64).collect(),
        delays,
        samples,
    }
}

/// SplitMix64 mix of the run seed and a sample index: well-separated
/// per-sample streams that do not depend on work partitioning.
pub(crate) fn sample_seed(seed: u64, index: u64) -> u64 {
    localwm_prng::SplitMix64::mix(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bounded_critical_path, KindBounds};
    use localwm_cdfg::generators::random_dag;
    use localwm_cdfg::{Cdfg, OpKind};

    #[test]
    fn fixed_delays_give_binary_criticality() {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let a = g.add_node(OpKind::Not);
        let b = g.add_node(OpKind::Not);
        let c = g.add_node(OpKind::Not); // short side branch
        g.add_data_edge(x, a).unwrap();
        g.add_data_edge(a, b).unwrap();
        g.add_data_edge(x, c).unwrap();
        let r = criticality(&g, &KindBounds::unit(), 50, 1);
        assert_eq!(r.probability(a), 1.0);
        assert_eq!(r.probability(b), 1.0);
        assert_eq!(r.probability(c), 0.0);
    }

    #[test]
    fn sampled_delays_stay_within_the_interval_bounds() {
        let g = random_dag(40, 0.15, 3);
        let model = KindBounds::uniform(1, 4);
        let interval = bounded_critical_path(&g, &model);
        let r = criticality(&g, &model, 300, 9);
        assert!(*r.delays.first().unwrap() >= interval.lo);
        assert!(*r.delays.last().unwrap() <= interval.hi);
        assert!(r.delay_quantile(0.0) <= r.delay_quantile(1.0));
    }

    #[test]
    fn deterministic_in_seed() {
        let g = random_dag(30, 0.2, 5);
        let model = KindBounds::uniform(1, 3);
        let a = criticality(&g, &model, 100, 11);
        let b = criticality(&g, &model, 100, 11);
        assert_eq!(a.delays, b.delays);
        assert_eq!(a.criticality, b.criticality);
    }

    #[test]
    fn serial_and_parallel_sweeps_agree_exactly() {
        let g = random_dag(40, 0.15, 13);
        let ctx = DesignContext::from(&g);
        let model = KindBounds::uniform(1, 4);
        let serial = criticality_in(&ctx, &model, 97, 17, Parallelism::Serial);
        for par in [
            Parallelism::Threads(2),
            Parallelism::Threads(5),
            Parallelism::Auto,
        ] {
            let p = criticality_in(&ctx, &model, 97, 17, par);
            assert_eq!(serial.delays, p.delays, "delays differ under {par:?}");
            assert_eq!(
                serial.criticality, p.criticality,
                "criticality differs under {par:?}"
            );
        }
    }

    #[test]
    fn lane_width_never_changes_the_report() {
        // 97 samples: K = 8 leaves a 1-lane tail block, K = 5 a 2-lane
        // one, K = 97 a single full block, K = 1 is the scalar path.
        let g = random_dag(40, 0.15, 13);
        let ctx = DesignContext::from(&g);
        let model = KindBounds::uniform(1, 4);
        let scalar = with_soa_lanes(1, || {
            criticality_in(&ctx, &model, 97, 17, Parallelism::Serial)
        });
        for lanes in [2, 5, 8, 16, 97, 200] {
            let wide = with_soa_lanes(lanes, || {
                criticality_in(&ctx, &model, 97, 17, Parallelism::Serial)
            });
            assert_eq!(scalar.delays, wide.delays, "delays differ at K={lanes}");
            assert_eq!(
                scalar.criticality, wide.criticality,
                "criticality differs at K={lanes}"
            );
        }
        // The default width (no override) matches too.
        let default = criticality_in(&ctx, &model, 97, 17, Parallelism::Serial);
        assert_eq!(scalar.delays, default.delays);
        assert_eq!(scalar.criticality, default.criticality);
    }

    #[test]
    fn lane_override_is_scoped_and_restored() {
        assert_eq!(soa_lanes(), DEFAULT_SOA_LANES);
        let inner = with_soa_lanes(3, || {
            let nested = with_soa_lanes(5, soa_lanes);
            assert_eq!(nested, 5);
            soa_lanes()
        });
        assert_eq!(inner, 3);
        assert_eq!(soa_lanes(), DEFAULT_SOA_LANES);
        // Zero clamps to the scalar path instead of dividing by zero.
        assert_eq!(with_soa_lanes(0, soa_lanes), 1);
    }

    #[test]
    fn zero_width_intervals_are_exact_and_nan_free() {
        // Every interval has lo == hi (no draws at all) — including the
        // all-zero-delay degenerate where the circuit delay is 0 and
        // *every* node is critical. Probabilities must stay exact
        // (0 or 1), never NaN.
        let g = random_dag(30, 0.2, 3);
        for (lo, hi) in [(2, 2), (0, 0)] {
            let r = criticality(&g, &KindBounds::uniform(lo, hi), 64, 5);
            assert!(r.criticality.iter().all(|p| !p.is_nan()));
            assert!(r.criticality.iter().all(|&p| p == 0.0 || p == 1.0));
            assert!(r.delays.iter().all(|&dl| dl == r.delays[0]));
            if lo == 0 {
                assert!(r.criticality.iter().all(|&p| p == 1.0));
                assert_eq!(r.delays[0], 0);
            }
        }
    }

    #[test]
    fn uncertainty_spreads_criticality() {
        let g = random_dag(50, 0.12, 8);
        let tight = criticality(&g, &KindBounds::unit(), 200, 2);
        let loose = criticality(&g, &KindBounds::uniform(1, 5), 200, 2);
        let count = |r: &CriticalityReport| r.critical_above(0.01).len();
        assert!(
            count(&loose) >= count(&tight),
            "delay uncertainty should widen the sometimes-critical set"
        );
    }

    #[test]
    fn quantile_uses_the_lower_rank_rule() {
        let report = |delays: Vec<u64>| CriticalityReport {
            criticality: Vec::new(),
            samples: delays.len(),
            delays,
        };
        // n = 1: every quantile is the only sample.
        let r1 = report(vec![7]);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(r1.delay_quantile(q), 7);
        }
        // n = 2: floor((2 - 1) * 0.5) = 0 — the median is the *lower* of
        // the two samples (nearest-rank rounding would pick the upper).
        let r2 = report(vec![3, 9]);
        assert_eq!(r2.delay_quantile(0.0), 3);
        assert_eq!(r2.delay_quantile(0.5), 3);
        assert_eq!(r2.delay_quantile(1.0), 9);
        // n = 3: floor((3 - 1) * 0.5) = 1 — the exact middle sample.
        let r3 = report(vec![1, 5, 8]);
        assert_eq!(r3.delay_quantile(0.0), 1);
        assert_eq!(r3.delay_quantile(0.5), 5);
        assert_eq!(r3.delay_quantile(1.0), 8);
    }

    #[test]
    fn criticality_reports_per_sample_cost() {
        let g = random_dag(30, 0.2, 4);
        let rec = std::sync::Arc::new(localwm_engine::RecordingProbe::new());
        let ctx = DesignContext::from(&g).with_probe(rec.clone());
        let _ = criticality_in(&ctx, &KindBounds::uniform(1, 3), 25, 3, Parallelism::Serial);
        assert_eq!(rec.counter_value("timing.criticality.samples"), 25);
        assert_eq!(rec.timer_count("timing.criticality"), 1);
        // ns_per_sample (elapsed/samples) is recorded once per run.
        assert!(rec.counter_value("timing.criticality.ns_per_sample") < u64::MAX);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        let g = random_dag(5, 0.3, 0);
        let _ = criticality(&g, &KindBounds::unit(), 0, 0);
    }
}
