//! Statistical timing: Monte-Carlo criticality under bounded delays.
//!
//! The interval analysis of [`localwm_engine::bounded_arrival`] brackets the
//! true critical path; this module refines it with sampling: draw delay
//! assignments consistent with a [`DelayBounds`] model, time each sample,
//! and report per-node *criticality probabilities* (how often a node lies
//! on a zero-slack path) plus the sampled circuit-delay distribution.
//!
//! Each input vector (sample) is timed with its **own** per-sample RNG seed
//! derived from the run seed and the sample index, so the result is
//! independent of how samples are fanned out across worker threads: serial
//! and parallel sweeps are byte-identical.

use std::time::Instant;

use localwm_cdfg::{Cdfg, NodeId};
use localwm_engine::{par_map, DesignContext, Parallelism};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{DelayBounds, DelayInterval};

/// Result of a Monte-Carlo timing run.
#[derive(Debug, Clone)]
pub struct CriticalityReport {
    /// Per node: fraction of samples in which it was critical.
    pub criticality: Vec<f64>,
    /// Sampled circuit delays, one per sample (sorted ascending).
    pub delays: Vec<u64>,
    /// Number of samples drawn.
    pub samples: usize,
}

impl CriticalityReport {
    /// Criticality probability of one node.
    pub fn probability(&self, n: NodeId) -> f64 {
        self.criticality[n.index()]
    }

    /// The `q`-quantile of the sampled circuit delay (`q ∈ [0, 1]`).
    ///
    /// Uses the **lower-rank** rule on the sorted sample vector: the result
    /// is `delays[floor((n - 1) · q)]`, the largest sampled delay whose rank
    /// fraction does not exceed `q`. The returned value is always one that
    /// was actually sampled, the mapping is monotone in `q`, `q = 0` is the
    /// minimum, and `q = 1` the maximum.
    ///
    /// # Panics
    ///
    /// Panics if no samples were drawn or `q` is out of range.
    pub fn delay_quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        assert!(!self.delays.is_empty(), "no samples drawn");
        let idx = ((self.delays.len() - 1) as f64 * q).floor() as usize;
        self.delays[idx]
    }

    /// Nodes whose criticality probability is at least `threshold`,
    /// ascending by id.
    pub fn critical_above(&self, threshold: f64) -> Vec<NodeId> {
        self.criticality
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p >= threshold)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }
}

/// Runs `samples` Monte-Carlo timing simulations of `g` under `model`,
/// drawing each node's delay uniformly from its interval.
///
/// Deterministic in `seed` (and independent of thread count — see
/// [`criticality_in`]). `O(samples · (V + E))` work.
///
/// # Panics
///
/// Panics if the graph is cyclic or `samples == 0`.
///
/// ```
/// use localwm_cdfg::designs::iir4_parallel;
/// use localwm_timing::{criticality, KindBounds};
///
/// let g = iir4_parallel();
/// let report = criticality(&g, &KindBounds::uniform(1, 3), 200, 7);
/// let a9 = g.node_by_name("A9").unwrap();
/// assert!(report.probability(a9) > 0.5); // the output add is usually critical
/// ```
pub fn criticality<M: DelayBounds>(
    g: &Cdfg,
    model: &M,
    samples: usize,
    seed: u64,
) -> CriticalityReport {
    criticality_in(
        &DesignContext::from(g),
        model,
        samples,
        seed,
        Parallelism::from_env(),
    )
}

/// [`criticality`] against a shared [`DesignContext`], fanning independent
/// input vectors across scoped worker threads per `par`.
///
/// Per-sample seeding makes the output identical for every
/// [`Parallelism`] choice.
///
/// # Panics
///
/// Panics if the graph is cyclic or `samples == 0`.
pub fn criticality_in<M: DelayBounds>(
    ctx: &DesignContext,
    model: &M,
    samples: usize,
    seed: u64,
    par: Parallelism,
) -> CriticalityReport {
    assert!(samples > 0, "at least one sample required");
    let g = ctx.graph();
    let order = ctx.topo();
    // Flat CSR adjacency: each sweep below streams packed u32 neighbor rows
    // laid out in topo order instead of chasing EdgeId → Option<Edge>.
    let preds = ctx.preds_csr();
    let succs = ctx.succs_csr();
    let n = g.node_count();
    let bounds: Vec<DelayInterval> = g.node_ids().map(|v| model.bounds(g, v)).collect();
    let probe = ctx.probe();
    probe.counter("timing.criticality.samples", samples as u64);

    // Contiguous sample ranges, one per worker; per-sample seeds make the
    // partitioning irrelevant to the result.
    let workers = par.worker_count(samples);
    let chunk = samples.div_ceil(workers);
    let ranges: Vec<(usize, usize)> = (0..workers)
        .map(|w| (w * chunk, ((w + 1) * chunk).min(samples)))
        .filter(|&(lo, hi)| lo < hi)
        .collect();

    let sweep_start = Instant::now();
    let parts = par_map(par, &ranges, |_, &(lo, hi)| {
        // Per-worker scratch, reused across every sample in the range: the
        // delay draw `d` fills in place instead of allocating per sample.
        let mut hits = vec![0u64; n];
        let mut delays = Vec::with_capacity(hi - lo);
        let mut finish = vec![0u64; n];
        let mut required = vec![u64::MAX; n];
        let mut d = vec![0u64; n];
        for s in lo..hi {
            let mut rng = StdRng::seed_from_u64(sample_seed(seed, s as u64));
            // Draw one consistent delay assignment (node-index order, so
            // the RNG stream is identical to the historical allocation).
            for (slot, b) in d.iter_mut().zip(&bounds) {
                *slot = if b.lo == b.hi {
                    b.lo
                } else {
                    rng.gen_range(b.lo..=b.hi)
                };
            }
            // Forward arrival times over packed predecessor rows.
            let mut circuit = 0u64;
            for (p, &v) in order.iter().enumerate() {
                let mut arrive = 0u64;
                for &pi in preds.row(p) {
                    arrive = arrive.max(finish[pi as usize]);
                }
                let f = arrive + d[v.index()];
                finish[v.index()] = f;
                circuit = circuit.max(f);
            }
            // Backward required times at the sampled circuit delay.
            for r in required.iter_mut() {
                *r = u64::MAX;
            }
            for p in (0..n).rev() {
                let v = order[p];
                let r = if succs.row(p).is_empty() {
                    circuit
                } else {
                    required[v.index()]
                };
                required[v.index()] = required[v.index()].min(r);
                let start_latest = r.saturating_sub(d[v.index()]);
                for &pi in preds.row(p) {
                    let slot = &mut required[pi as usize];
                    *slot = (*slot).min(start_latest);
                }
            }
            for v in 0..n {
                if finish[v] == required[v] {
                    hits[v] += 1;
                }
            }
            delays.push(circuit);
        }
        (hits, delays)
    });
    let sweep_ns = u64::try_from(sweep_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    probe.timer_ns("timing.criticality", sweep_ns);
    probe.counter(
        "timing.criticality.ns_per_sample",
        sweep_ns / samples as u64,
    );

    let mut hits = vec![0u64; n];
    let mut delays = Vec::with_capacity(samples);
    for (part_hits, part_delays) in parts {
        for (h, p) in hits.iter_mut().zip(part_hits) {
            *h += p;
        }
        delays.extend(part_delays);
    }
    delays.sort_unstable();
    CriticalityReport {
        criticality: hits.iter().map(|&h| h as f64 / samples as f64).collect(),
        delays,
        samples,
    }
}

/// SplitMix64-style mix of the run seed and a sample index: well-separated
/// per-sample streams that do not depend on work partitioning.
pub(crate) fn sample_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bounded_critical_path, KindBounds};
    use localwm_cdfg::generators::random_dag;
    use localwm_cdfg::{Cdfg, OpKind};

    #[test]
    fn fixed_delays_give_binary_criticality() {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let a = g.add_node(OpKind::Not);
        let b = g.add_node(OpKind::Not);
        let c = g.add_node(OpKind::Not); // short side branch
        g.add_data_edge(x, a).unwrap();
        g.add_data_edge(a, b).unwrap();
        g.add_data_edge(x, c).unwrap();
        let r = criticality(&g, &KindBounds::unit(), 50, 1);
        assert_eq!(r.probability(a), 1.0);
        assert_eq!(r.probability(b), 1.0);
        assert_eq!(r.probability(c), 0.0);
    }

    #[test]
    fn sampled_delays_stay_within_the_interval_bounds() {
        let g = random_dag(40, 0.15, 3);
        let model = KindBounds::uniform(1, 4);
        let interval = bounded_critical_path(&g, &model);
        let r = criticality(&g, &model, 300, 9);
        assert!(*r.delays.first().unwrap() >= interval.lo);
        assert!(*r.delays.last().unwrap() <= interval.hi);
        assert!(r.delay_quantile(0.0) <= r.delay_quantile(1.0));
    }

    #[test]
    fn deterministic_in_seed() {
        let g = random_dag(30, 0.2, 5);
        let model = KindBounds::uniform(1, 3);
        let a = criticality(&g, &model, 100, 11);
        let b = criticality(&g, &model, 100, 11);
        assert_eq!(a.delays, b.delays);
        assert_eq!(a.criticality, b.criticality);
    }

    #[test]
    fn serial_and_parallel_sweeps_agree_exactly() {
        let g = random_dag(40, 0.15, 13);
        let ctx = DesignContext::from(&g);
        let model = KindBounds::uniform(1, 4);
        let serial = criticality_in(&ctx, &model, 97, 17, Parallelism::Serial);
        for par in [
            Parallelism::Threads(2),
            Parallelism::Threads(5),
            Parallelism::Auto,
        ] {
            let p = criticality_in(&ctx, &model, 97, 17, par);
            assert_eq!(serial.delays, p.delays, "delays differ under {par:?}");
            assert_eq!(
                serial.criticality, p.criticality,
                "criticality differs under {par:?}"
            );
        }
    }

    #[test]
    fn uncertainty_spreads_criticality() {
        let g = random_dag(50, 0.12, 8);
        let tight = criticality(&g, &KindBounds::unit(), 200, 2);
        let loose = criticality(&g, &KindBounds::uniform(1, 5), 200, 2);
        let count = |r: &CriticalityReport| r.critical_above(0.01).len();
        assert!(
            count(&loose) >= count(&tight),
            "delay uncertainty should widen the sometimes-critical set"
        );
    }

    #[test]
    fn quantile_uses_the_lower_rank_rule() {
        let report = |delays: Vec<u64>| CriticalityReport {
            criticality: Vec::new(),
            samples: delays.len(),
            delays,
        };
        // n = 1: every quantile is the only sample.
        let r1 = report(vec![7]);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(r1.delay_quantile(q), 7);
        }
        // n = 2: floor((2 - 1) * 0.5) = 0 — the median is the *lower* of
        // the two samples (nearest-rank rounding would pick the upper).
        let r2 = report(vec![3, 9]);
        assert_eq!(r2.delay_quantile(0.0), 3);
        assert_eq!(r2.delay_quantile(0.5), 3);
        assert_eq!(r2.delay_quantile(1.0), 9);
        // n = 3: floor((3 - 1) * 0.5) = 1 — the exact middle sample.
        let r3 = report(vec![1, 5, 8]);
        assert_eq!(r3.delay_quantile(0.0), 1);
        assert_eq!(r3.delay_quantile(0.5), 5);
        assert_eq!(r3.delay_quantile(1.0), 8);
    }

    #[test]
    fn criticality_reports_per_sample_cost() {
        let g = random_dag(30, 0.2, 4);
        let rec = std::sync::Arc::new(localwm_engine::RecordingProbe::new());
        let ctx = DesignContext::from(&g).with_probe(rec.clone());
        let _ = criticality_in(&ctx, &KindBounds::uniform(1, 3), 25, 3, Parallelism::Serial);
        assert_eq!(rec.counter_value("timing.criticality.samples"), 25);
        assert_eq!(rec.timer_count("timing.criticality"), 1);
        // ns_per_sample (elapsed/samples) is recorded once per run.
        assert!(rec.counter_value("timing.criticality.ns_per_sample") < u64::MAX);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        let g = random_dag(5, 0.3, 0);
        let _ = criticality(&g, &KindBounds::unit(), 0, 0);
    }
}
