//! Critical-path timing analysis for CDFGs.
//!
//! Both watermarking protocols begin with "compute the critical path `C` of
//! the CDFG" and filter candidate nodes by *laxity* — the length of the
//! longest path that contains a node.
//!
//! The deterministic analyses — [`UnitTiming`], the bounded-delay interval
//! machinery ([`DelayBounds`], [`bounded_arrival`], [`DynamicBounds`]) —
//! live in [`localwm_engine`] where they are memoized behind
//! [`DesignContext`]; this crate re-exports them unchanged and adds the
//! randomized layer:
//!
//! * [`criticality`] — Monte-Carlo statistical timing: per-node
//!   criticality probabilities and circuit-delay quantiles under any
//!   bounded model, with deterministic per-sample seeding so serial and
//!   parallel runs agree exactly.
//! * [`CriticalityCache`] — the same analysis memoized across graph
//!   mutations: per-sample draws and arrival times survive an edit and
//!   only the dirty fan-out cone is re-timed, with provable
//!   byte-identity to a from-scratch run.
//!
//! # Example
//!
//! ```
//! use localwm_cdfg::designs::iir4_parallel;
//! use localwm_timing::UnitTiming;
//!
//! let g = iir4_parallel();
//! let t = UnitTiming::new(&g);
//! assert_eq!(t.critical_path(), 6);
//! let a9 = g.node_by_name("A9").unwrap();
//! assert_eq!(t.laxity(a9), 6); // A9 lies on the critical path
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod incremental;
mod statistical;

pub use localwm_engine::{
    bounded_arrival, bounded_critical_path, possibly_critical, BoundedArrival, DelayBounds,
    DelayInterval, DesignContext, DynamicBounds, KindBounds, UnitTiming,
};

pub use incremental::CriticalityCache;
pub use statistical::{criticality, criticality_in, with_soa_lanes, CriticalityReport};
