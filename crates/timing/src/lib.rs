//! Critical-path timing analysis for CDFGs.
//!
//! Both watermarking protocols begin with "compute the critical path `C` of
//! the CDFG" and filter candidate nodes by *laxity* — the length of the
//! longest path that contains a node. This crate provides:
//!
//! * [`UnitTiming`] — control-step timing under the homogeneous (unit
//!   delay) SDF model: ASAP/ALAP steps, per-node laxity, mobility windows,
//!   and incremental update when a temporal edge is added.
//! * [`DelayBounds`] / [`bounded_arrival`] — a **bounded delay model**
//!   where every operation's delay is an interval `[lo, hi]`; the analysis
//!   propagates arrival intervals and yields lower/upper bounds on the true
//!   critical path, plus the set of *possibly-critical* nodes.
//! * [`DynamicBounds`] — input-dependent ("dynamically bounded") delay
//!   intervals whose width grows with the number of simultaneously-arriving
//!   operands, in the spirit of dynamically bounded delay critical-path
//!   analysis.
//! * [`criticality`] — Monte-Carlo statistical timing: per-node
//!   criticality probabilities and circuit-delay quantiles under any
//!   bounded model.
//!
//! # Example
//!
//! ```
//! use localwm_cdfg::designs::iir4_parallel;
//! use localwm_timing::UnitTiming;
//!
//! let g = iir4_parallel();
//! let t = UnitTiming::new(&g);
//! assert_eq!(t.critical_path(), 6);
//! let a9 = g.node_by_name("A9").unwrap();
//! assert_eq!(t.laxity(a9), 6); // A9 lies on the critical path
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounded;
mod delay;
mod statistical;
mod unit;

pub use bounded::{bounded_arrival, bounded_critical_path, possibly_critical, BoundedArrival};
pub use delay::{DelayBounds, DelayInterval, DynamicBounds, KindBounds};
pub use statistical::{criticality, CriticalityReport};
pub use unit::UnitTiming;
