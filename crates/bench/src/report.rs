//! Small table-rendering helpers shared by the experiment binaries.

/// Renders an ASCII table: a header row plus data rows, columns padded to
/// the widest cell.
///
/// ```
/// use localwm_bench::report::render_table;
/// let t = render_table(
///     &["app", "N"],
///     &[vec!["G721".into(), "758".into()]],
/// );
/// assert!(t.contains("G721"));
/// ```
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut width = vec![0usize; cols];
    for (i, h) in header.iter().enumerate() {
        width[i] = h.len();
    }
    for row in rows {
        assert_eq!(row.len(), cols, "row arity must match header");
        for (i, cell) in row.iter().enumerate() {
            width[i] = width[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, width: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!(" {:<w$} |", c, w = width[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(header.to_vec(), &width));
    let mut sep = String::from("|");
    for w in &width {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &width));
    }
    out
}

/// Formats a `log₁₀ P_c` as the paper prints it (`10^-26`).
pub fn format_pc(log10_pc: f64) -> String {
    if log10_pc.is_infinite() {
        return "0 (structural)".to_owned();
    }
    format!("10^{:.0}", log10_pc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["a", "bbbb"],
            &[
                vec!["xx".into(), "y".into()],
                vec!["z".into(), "wwwww".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        let lens: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "ragged table: {t}");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn ragged_rows_panic() {
        let _ = render_table(&["a"], &[vec!["x".into(), "y".into()]]);
    }

    #[test]
    fn pc_formatting() {
        assert_eq!(format_pc(-26.4), "10^-26");
        assert_eq!(format_pc(f64::NEG_INFINITY), "0 (structural)");
    }
}
