//! Benchmark harness regenerating every table and figure of the paper.
//!
//! One binary per experiment (see `DESIGN.md` §3 and `EXPERIMENTS.md`):
//!
//! * `table1` — operation-scheduling watermarks on the eight MediaBench
//!   applications: coincidence probability and VLIW performance overhead
//!   at 2 % and 5 % constrained nodes.
//! * `table2` — template-matching watermarks on the eight DSP designs:
//!   module-count overhead in tight and relaxed schedules.
//! * `fig3` — exact schedule-space counts on the fourth-order parallel IIR
//!   subtree (the paper's 166-vs-15 example) and the pairwise 77-vs-10
//!   count.
//! * `fig4` — the template-matching motivational example, including the
//!   six ways of covering an enforced pair.
//! * `attack` — the tampering analysis (analytic model plus Monte-Carlo
//!   proof-decay curves).
//!
//! Criterion benches (`cargo bench`) measure embedding, detection,
//! scheduling and matching throughput as design size scales.

#![forbid(unsafe_code)]

pub mod report;
