//! Regenerates the paper's **tampering analysis** (§IV-A discussion).
//!
//! 1. The analytic model: for a 100 000-operation design carrying 100
//!    temporal edges with `E[ψ_W/ψ_N] = ½`, how many pair-order
//!    alterations must an attacker apply to push the proof of authorship
//!    above one-in-a-million? (Paper: 31 729 ⇒ 63 % of the solution; our
//!    model: 40 500 ⇒ 81 % — same conclusion, see EXPERIMENTS.md.)
//! 2. A Monte-Carlo proof-decay curve on a real embedded watermark:
//!    random legal schedule perturbations of growing size versus the
//!    fraction of surviving constraints and the residual proof strength.
//!
//! Run with `cargo run --release -p localwm-bench --bin attack`.

use localwm_bench::report::render_table;
use localwm_cdfg::generators::{mediabench, mediabench_apps};
use localwm_core::attack::{alterations_to_defeat, perturb_schedule_with, reschedule_with};
use localwm_core::{SchedWmConfig, SchedulingWatermarker, Signature};

fn main() {
    println!("Attack analysis — erasing a local watermark\n");

    // --- Analytic model --------------------------------------------------
    let total_pairs = 50_000u64;
    let marked = 100u64;
    let needed = alterations_to_defeat(total_pairs, marked, 0.5, 1e-6).expect("model inputs valid");
    println!(
        "analytic: 100k-op design, {marked} marked pairs of {total_pairs}, \
         E[psi]=1/2, target Pc 1e-6:"
    );
    println!(
        "  alterations needed: {needed} = {:.0}% of the solution \
         (paper: 31 729 = 63%)\n",
        100.0 * needed as f64 / total_pairs as f64
    );

    // --- Monte-Carlo proof decay ----------------------------------------
    let app = mediabench_apps()[4]; // PGP, 1755 ops
    let g = mediabench(&app, 0);
    let wm = SchedulingWatermarker::new(SchedWmConfig::with_node_fraction(0.02));
    let signature = Signature::from_author("attack-victim");
    let emb = wm.embed(&g, &signature).expect("PGP-sized design embeds");
    let k = emb.edges.len();
    println!(
        "Monte-Carlo: {} ({} ops), K = {k} temporal edges, schedule \
         length {} of {} steps",
        app.name,
        app.ops,
        emb.schedule.length(),
        emb.available_steps
    );

    let mut rows = Vec::new();
    for moves in [0usize, 25, 100, 400, 1600, 6400, 25_600] {
        // Average over a few attack seeds.
        let mut surv = 0.0;
        let mut digits = 0.0;
        const SEEDS: u64 = 5;
        for seed in 0..SEEDS {
            let (p, _) = perturb_schedule_with(
                &g,
                &emb.schedule,
                emb.available_steps,
                moves,
                &mut localwm_prng::SplitMix64::new(seed),
            );
            let ev = wm.detect(&p, &g, &signature).expect("detection runs");
            surv += ev.satisfied_fraction();
            digits += ev.satisfied_fraction() * -ev.log10_pc;
        }
        surv /= SEEDS as f64;
        digits /= SEEDS as f64;
        rows.push(vec![
            moves.to_string(),
            format!("{:.1}%", 100.0 * surv),
            format!("{digits:.1}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "random moves",
                "constraints surviving",
                "residual proof digits"
            ],
            &rows
        )
    );

    // --- Full re-synthesis attack ----------------------------------------
    let fresh = reschedule_with(
        &localwm_engine::DesignContext::from(&g),
        &mut localwm_prng::SplitMix64::new(99),
    )
    .expect("rescheduling succeeds");
    let ev = wm.detect(&fresh, &g, &signature).expect("detection runs");
    println!(
        "full re-synthesis from the stripped spec: {:.1}% of constraints \
         coincide (expected ~50% noise floor), is_match = {}",
        100.0 * ev.satisfied_fraction(),
        ev.is_match()
    );
    println!(
        "\nShape check: the proof decays smoothly with tampering effort; \n\
         erasing it outright costs a redesign-scale perturbation."
    );
}
