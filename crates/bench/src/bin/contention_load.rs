//! Contention scaling benchmark: request latency under 1/2/4/8 concurrent
//! clients with all traffic aimed at one cache shard vs spread across
//! shards, plus the SoA Monte-Carlo kernel's ns/sample against the scalar
//! (one-lane) kernel.
//!
//! Writes `BENCH_scaling.json` (or the path given with `--out`) in the
//! shape of the other `BENCH_*.json` reports. The SoA lanes resolve their
//! baselines by name (`engine/criticality/serial/2000`) from
//! `BENCH_hotpath.json` — the committed pre-SoA numbers — so the report
//! carries the vectorization win explicitly. `--quick` trims client and
//! sample counts for the CI lane.
//!
//! On a single-core host the curve measures contention overhead (lock and
//! coalescing behavior under interleaving), not parallel speedup; the
//! note records the core count so readers can tell which regime produced
//! the numbers.

use std::time::{Duration, Instant};

use localwm_bench::report::render_table;
use localwm_cdfg::generators::{layered, mediabench, mediabench_apps, LayeredConfig};
use localwm_cdfg::write_cdfg;
use localwm_engine::{DesignContext, Parallelism};
use localwm_serve::{Client, Request, RequestKind, ServeConfig, ServerHandle};
use localwm_timing::{criticality_in, with_soa_lanes, KindBounds};
use serde::Value;

const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Matches the `criticality` bin: layered graph size and sample count of
/// the `engine/criticality/*/2000` lanes, so baselines resolve by name.
const SOA_OPS: usize = 2000;
const MC_SAMPLES: usize = 64;

struct Lane {
    name: String,
    mean_ns: f64,
    samples: usize,
    ns_per_sample: Option<f64>,
    baseline_ns: Option<f64>,
}

fn start_server(workers: usize) -> ServerHandle {
    localwm_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_depth: 256,
        cache_cap: 16,
        default_timeout_ms: None,
        metrics_out: None,
        fault_plan: None,
        session_idle_ms: None,
        store_dir: None,
        pipeline_window: localwm_serve::server::DEFAULT_PIPELINE_WINDOW,
    })
    .expect("bind loopback")
}

fn analyze_request(design: &str, samples: usize, seed: u64) -> Request {
    let mut r = Request::new(RequestKind::Analyze);
    r.design = Some(design.to_owned());
    r.samples = Some(samples);
    r.seed = Some(seed);
    r
}

/// Mean ns/request with `clients` concurrent connections each sending
/// `per_client` analyze requests. `spread: false` aims every client at
/// `designs[0]` (all cache traffic on that design's shard); `spread: true`
/// rotates designs per client. Distinct seeds keep every request a
/// distinct computation, so the lane measures contention, not coalescing.
fn contended_mean_ns(
    designs: &[String],
    clients: usize,
    per_client: usize,
    mc_samples: usize,
    spread: bool,
) -> f64 {
    let handle = start_server(4);
    let addr = handle.addr().to_string();
    // Pre-warm the context cache so every client count sees the same work.
    let mut warmup = Client::connect_within(&addr, Duration::from_secs(5)).expect("warmup connect");
    for d in designs {
        assert!(
            warmup.call(&analyze_request(d, 1, 0)).expect("warmup").ok,
            "warmup request failed"
        );
    }
    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let design = if spread {
                designs[c % designs.len()].clone()
            } else {
                designs[0].clone()
            };
            std::thread::spawn(move || {
                let mut client =
                    Client::connect_within(&addr, Duration::from_secs(5)).expect("connect");
                for i in 0..per_client {
                    let seed = 1 + (c * per_client + i) as u64;
                    let resp = client
                        .call(&analyze_request(&design, mc_samples, seed))
                        .expect("request");
                    assert!(resp.ok, "load request failed: {:?}", resp.error);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    handle.shutdown();
    elapsed / (clients * per_client) as f64
}

fn mean_ns<R>(rounds: usize, mut f: impl FnMut() -> R) -> f64 {
    let _ = f(); // warm-up: caches, pool start, page faults
    let start = Instant::now();
    for _ in 0..rounds {
        let _ = f();
    }
    start.elapsed().as_nanos() as f64 / rounds as f64
}

/// `name → mean_ns` from a committed `BENCH_*.json`, empty when absent.
fn load_baselines(path: &str) -> Vec<(String, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(doc) = serde_json::from_str::<Value>(&text) else {
        return Vec::new();
    };
    let Some(Value::Array(entries)) = doc.field("benchmarks") else {
        return Vec::new();
    };
    entries
        .iter()
        .filter_map(|e| {
            let name = match e.field("name") {
                Some(Value::Str(s)) => s.clone(),
                _ => return None,
            };
            let mean = match e.field("mean_ns") {
                Some(Value::Float(f)) => *f,
                Some(Value::Int(i)) => *i as f64,
                _ => return None,
            };
            Some((name, mean))
        })
        .collect()
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_scaling.json".to_owned();
    let mut baseline_path = "BENCH_hotpath.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--baseline" => baseline_path = args.next().expect("--baseline needs a path"),
            other => panic!("unknown argument {other} (expected --quick/--out/--baseline)"),
        }
    }
    let (per_client, req_samples, soa_rounds) = if quick { (4, 300, 6) } else { (12, 2000, 30) };
    let baselines = load_baselines(&baseline_path);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let apps = mediabench_apps();
    let designs: Vec<String> = apps
        .iter()
        .take(6)
        .map(|app| write_cdfg(&mediabench(app, 0)))
        .collect();

    // ---- Contention curve: one-shard vs spread at 1/2/4/8 clients ----
    let mut lanes: Vec<Lane> = Vec::new();
    for (tag, spread) in [("one-shard", false), ("spread", true)] {
        for &clients in &CLIENT_COUNTS {
            let mean = contended_mean_ns(&designs, clients, per_client, req_samples, spread);
            lanes.push(Lane {
                name: format!("serve/contention/{tag}/clients-{clients}"),
                mean_ns: mean,
                samples: clients * per_client,
                ns_per_sample: None,
                baseline_ns: None,
            });
        }
    }

    // ---- SoA kernel vs scalar, against the committed pre-SoA baseline ----
    let g = layered(&LayeredConfig {
        ops: SOA_OPS,
        layers: ((SOA_OPS as f64).sqrt() * 1.2) as usize,
        ..Default::default()
    });
    let ctx = DesignContext::new(g);
    let model = KindBounds::uniform(1, 3);
    let scalar_baseline = baselines
        .iter()
        .find(|(n, _)| n == &format!("engine/criticality/serial/{SOA_OPS}"))
        .map(|&(_, b)| b);
    for (tag, width) in [("soa-8", 8usize), ("scalar", 1)] {
        let mean = mean_ns(soa_rounds, || {
            with_soa_lanes(width, || {
                criticality_in(&ctx, &model, MC_SAMPLES, 7, Parallelism::Serial)
            })
        });
        lanes.push(Lane {
            name: format!("engine/criticality/{tag}/{SOA_OPS}"),
            mean_ns: mean,
            samples: soa_rounds,
            ns_per_sample: Some(mean / MC_SAMPLES as f64),
            baseline_ns: scalar_baseline,
        });
    }

    let rows: Vec<Vec<String>> = lanes
        .iter()
        .map(|l| {
            vec![
                l.name.clone(),
                format!("{:.1}", l.mean_ns / 1e3),
                l.ns_per_sample
                    .map_or_else(|| "-".to_owned(), |n| format!("{n:.0}")),
                l.baseline_ns
                    .map_or_else(|| "-".to_owned(), |b| format!("{:.2}x", b / l.mean_ns)),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["benchmark", "mean µs", "ns/sample", "vs baseline"], &rows)
    );

    let entries: Vec<Value> = lanes
        .iter()
        .map(|l| {
            let mut fields = vec![
                ("name".to_owned(), Value::Str(l.name.clone())),
                (
                    "mean_ns".to_owned(),
                    Value::Float((l.mean_ns * 10.0).round() / 10.0),
                ),
                ("samples".to_owned(), Value::Int(l.samples as i64)),
            ];
            if let Some(n) = l.ns_per_sample {
                fields.push((
                    "ns_per_sample".to_owned(),
                    Value::Float((n * 10.0).round() / 10.0),
                ));
            }
            if let Some(b) = l.baseline_ns {
                fields.push(("baseline_ns".to_owned(), Value::Float(b)));
                fields.push((
                    "speedup".to_owned(),
                    Value::Float((b / l.mean_ns * 100.0).round() / 100.0),
                ));
            }
            Value::Object(fields)
        })
        .collect();
    let note = format!(
        "contention_load: {}x{per_client} analyze(samples={req_samples}) requests \
         per point, distinct seeds (no coalescing), 4 workers, cache_cap 16; \
         one-shard = every client hammers designs[0] (all cache traffic on one \
         shard), spread = designs rotate per client; soa-8/scalar = Monte-Carlo \
         criticality ({MC_SAMPLES} samples, layered {SOA_OPS} ops, seed 7, \
         {soa_rounds} rounds) at SoA lane widths 8 and 1, baseline resolved \
         from {baseline_path} (pre-SoA serial kernel); host had {cores} CPU \
         core(s), so multi-client points measure contention overhead, not \
         parallel speedup",
        CLIENT_COUNTS
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("/")
    );
    let doc = Value::Object(vec![
        ("note".to_owned(), Value::Str(note)),
        ("benchmarks".to_owned(), Value::Array(entries)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("render json");
    std::fs::write(&out_path, json + "\n").expect("write report");
    eprintln!("wrote {out_path}");
}
