//! Load benchmark for the `localwm-gateway` routing tier: per-request
//! routing overhead versus a direct backend, multi-client throughput at
//! 1, 2 and 4 backends, and the first-request latency after a backend
//! kill (drain-refusal failover to the replica, cold replica cache).
//!
//! Backends and the gateway run in-process on loopback sockets; clients
//! are real TCP connections. Writes `BENCH_gateway.json` (or the path
//! given as the first argument) in the same shape as the other
//! `BENCH_*.json` reports.

use std::time::{Duration, Instant};

use localwm_bench::report::render_table;
use localwm_cdfg::generators::{mediabench, mediabench_apps};
use localwm_cdfg::write_cdfg;
use localwm_gateway::{BackendSpec, GatewayConfig, GatewayHandle};
use localwm_serve::{Client, Request, RequestKind, ServeConfig, ServerHandle};
use serde::Value;

struct Sample {
    name: String,
    mean_ns: f64,
    samples: usize,
}

fn start_backend() -> ServerHandle {
    localwm_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 256,
        cache_cap: 16,
        default_timeout_ms: None,
        metrics_out: None,
        fault_plan: None,
        session_idle_ms: None,
        store_dir: None,
        pipeline_window: localwm_serve::server::DEFAULT_PIPELINE_WINDOW,
    })
    .expect("bind backend")
}

fn start_gateway(backend_addrs: &[String], record_routes: bool) -> GatewayHandle {
    let specs = backend_addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| BackendSpec {
            name: format!("b{i}"),
            addr: addr.clone(),
        })
        .collect();
    localwm_gateway::start(GatewayConfig {
        backends: specs,
        replicas: 2,
        max_retries: 1,
        backoff_base_ms: 1,
        backoff_cap_ms: 8,
        health_interval_ms: None,
        record_routes,
        ..GatewayConfig::default()
    })
    .expect("bind gateway")
}

fn connect(addr: &str) -> Client {
    Client::connect_within(addr, Duration::from_secs(5)).expect("connect")
}

fn timing_request(design: &str) -> Request {
    let mut r = Request::new(RequestKind::Timing);
    r.design = Some(design.to_owned());
    r
}

/// Mean per-request latency of sending `reqs` serially on one connection.
fn mean_latency_ns(client: &mut Client, reqs: &[Request]) -> f64 {
    let start = Instant::now();
    for r in reqs {
        let resp = client.call(r).expect("request");
        assert!(resp.ok, "benchmark request failed: {:?}", resp.error);
    }
    start.elapsed().as_nanos() as f64 / reqs.len() as f64
}

/// Warm per-request latency: direct to one backend vs through a gateway
/// fronting that same backend — the difference is the routing tier's
/// relay cost (parse, shard, pooled exchange).
fn routing_overhead(designs: &[String], out: &mut Vec<Sample>) {
    const ROUNDS: usize = 8;
    let reqs: Vec<Request> = designs.iter().map(|d| timing_request(d)).collect();

    let backend = start_backend();
    let mut direct = connect(&backend.addr().to_string());
    mean_latency_ns(&mut direct, &reqs); // populate the context cache
    let mut warm = 0.0;
    for _ in 0..ROUNDS {
        warm += mean_latency_ns(&mut direct, &reqs);
    }
    out.push(Sample {
        name: "gateway/timing/direct-backend".to_owned(),
        mean_ns: warm / ROUNDS as f64,
        samples: ROUNDS * reqs.len(),
    });

    let gw = start_gateway(&[backend.addr().to_string()], false);
    let mut routed = connect(&gw.addr().to_string());
    mean_latency_ns(&mut routed, &reqs); // warm the gateway's shard-key memo
    let mut warm = 0.0;
    for _ in 0..ROUNDS {
        warm += mean_latency_ns(&mut routed, &reqs);
    }
    gw.shutdown();
    backend.shutdown();
    out.push(Sample {
        name: "gateway/timing/via-gateway".to_owned(),
        mean_ns: warm / ROUNDS as f64,
        samples: ROUNDS * reqs.len(),
    });
}

/// Multi-client throughput through the gateway at a given fleet size.
fn throughput(designs: &[String], backends: usize, out: &mut Vec<Sample>) {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 12;
    let fleet: Vec<ServerHandle> = (0..backends).map(|_| start_backend()).collect();
    let addrs: Vec<String> = fleet.iter().map(|b| b.addr().to_string()).collect();
    let gw = start_gateway(&addrs, false);
    let addr = gw.addr().to_string();
    // Pre-warm every backend's context cache through the gateway.
    let mut warmup = connect(&addr);
    for d in designs {
        assert!(warmup.call(&timing_request(d)).expect("warmup").ok);
    }
    let start = Instant::now();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            let designs = designs.to_vec();
            std::thread::spawn(move || {
                let mut client = connect(&addr);
                for i in 0..PER_CLIENT {
                    let d = &designs[(c + i) % designs.len()];
                    let resp = client.call(&timing_request(d)).expect("request");
                    assert!(resp.ok, "load request failed: {:?}", resp.error);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let total = CLIENTS * PER_CLIENT;
    let mean_ns = start.elapsed().as_nanos() as f64 / total as f64;
    gw.shutdown();
    for b in fleet {
        b.shutdown();
    }
    out.push(Sample {
        name: format!("gateway/timing-load/backends-{backends}"),
        mean_ns,
        samples: total,
    });
}

/// First-request latency after the shard owner dies: the gateway hits the
/// dead backend's pooled connection (drain refusal) or a refused dial,
/// fails over to the replica, and the replica builds the context cold.
fn failover(designs: &[String], out: &mut Vec<Sample>) {
    let mut fleet: Vec<Option<ServerHandle>> = (0..2).map(|_| Some(start_backend())).collect();
    let addrs: Vec<String> = fleet
        .iter()
        .map(|b| b.as_ref().expect("alive").addr().to_string())
        .collect();
    let gw = start_gateway(&addrs, true);
    let mut client = connect(&gw.addr().to_string());
    for d in designs {
        assert!(client.call(&timing_request(d)).expect("learn owner").ok);
    }
    let trace = gw.routing_trace();
    let victim_name = trace[0].backend.clone().expect("routed");
    let victim: usize = victim_name
        .trim_start_matches('b')
        .parse()
        .expect("bN name");
    let owned: Vec<usize> = trace
        .iter()
        .enumerate()
        .filter(|(_, r)| r.backend.as_deref() == Some(victim_name.as_str()))
        .map(|(i, _)| i)
        .collect();
    fleet[victim].take().expect("victim alive").shutdown();

    let start = Instant::now();
    for &i in &owned {
        let resp = client.call(&timing_request(&designs[i])).expect("failover");
        assert!(resp.ok, "failover request failed: {:?}", resp.error);
    }
    let mean_ns = start.elapsed().as_nanos() as f64 / owned.len() as f64;
    gw.shutdown();
    for b in fleet.into_iter().flatten() {
        b.shutdown();
    }
    out.push(Sample {
        name: "gateway/failover/first-request-after-kill".to_owned(),
        mean_ns,
        samples: owned.len(),
    });
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_gateway.json".to_owned());
    let apps = mediabench_apps();
    let designs: Vec<String> = apps
        .iter()
        .take(6)
        .map(|app| write_cdfg(&mediabench(app, 0)))
        .collect();

    let mut samples = Vec::new();
    routing_overhead(&designs, &mut samples);
    for backends in [1, 2, 4] {
        throughput(&designs, backends, &mut samples);
    }
    failover(&designs, &mut samples);

    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                format!("{:.1}", s.mean_ns / 1e3),
                s.samples.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["benchmark", "mean µs/req", "n"], &rows)
    );

    let entries: Vec<Value> = samples
        .iter()
        .map(|s| {
            Value::Object(vec![
                ("name".to_owned(), Value::Str(s.name.clone())),
                (
                    "mean_ns".to_owned(),
                    Value::Float((s.mean_ns * 10.0).round() / 10.0),
                ),
                ("samples".to_owned(), Value::Int(s.samples as i64)),
            ])
        })
        .collect();
    let note = format!(
        "cluster_load: in-process localwm-gateway + localwm-serve backends on \
         loopback TCP; direct-vs-via-gateway = warm serial timing requests over \
         6 mediabench designs (difference = routing-tier relay cost); \
         timing-load = 4 sync clients x 12 warm timing requests through the \
         gateway at 1/2/4 backends; failover = first request per shard after \
         its owner was killed (replica serves cold); host had {} CPU core(s), \
         so backend scaling is bounded accordingly and absolute numbers are \
         pessimistic",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    let doc = Value::Object(vec![
        ("note".to_owned(), Value::Str(note)),
        ("benchmarks".to_owned(), Value::Array(entries)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("render json");
    std::fs::write(&out_path, json + "\n").expect("write report");
    eprintln!("wrote {out_path}");
}
