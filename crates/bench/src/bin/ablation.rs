//! Ablation sweeps over the watermark's design parameters.
//!
//! Four studies (none is in the paper's tables; they quantify the design
//! choices the protocol description leaves to the implementer):
//!
//! 1. **K sweep** — proof strength vs. VLIW overhead as the edge count
//!    grows: the fundamental strength/cost trade-off.
//! 2. **ε sweep** — how the laxity margin trades embedding success and
//!    overhead.
//! 3. **Slack-factor sweep** — how the step budget affects window widths
//!    and with them the per-edge coincidence ratio.
//! 4. **Estimator calibration** — exact (enumeration) vs. approximate
//!    (pair-window) `P_c` on subtree-sized problems, quantifying the
//!    approximation the Table I estimates rest on.
//!
//! Run with `cargo run --release -p localwm-bench --bin ablation`.

use localwm_bench::report::render_table;
use localwm_cdfg::generators::{mediabench, mediabench_apps, random_dag};
use localwm_cdfg::NodeId;
use localwm_core::pc::{exact_pc, log10_pc_pairs};
use localwm_core::{SchedWmConfig, SchedulingWatermarker, Signature};
use localwm_sched::Windows;
use localwm_timing::UnitTiming;
use localwm_vliw::{overhead_percent, Machine};

fn main() {
    let sig = Signature::from_author("ablation");
    let machine = Machine::paper_default();

    // --- 1. K sweep -------------------------------------------------------
    println!("K sweep (G721, 758 ops): proof strength vs. overhead\n");
    let g = mediabench(&mediabench_apps()[1], 0);
    let mut rows = Vec::new();
    for k in [5usize, 10, 20, 40, 80] {
        let wm = SchedulingWatermarker::new(SchedWmConfig {
            k,
            ..SchedWmConfig::default()
        });
        match wm.embed(&g, &sig) {
            Ok(emb) => {
                let ev = wm.detect(&emb.schedule, &g, &sig).expect("detects");
                let realized = SchedulingWatermarker::realize_as_unit_ops(&g, &emb.edges);
                let perf = overhead_percent(&g, &realized, &machine);
                rows.push(vec![
                    k.to_string(),
                    format!("{:.1}", -ev.log10_pc),
                    format!("{:.2}%", perf.overhead_percent()),
                    emb.domains.len().to_string(),
                ]);
            }
            Err(e) => rows.push(vec![
                k.to_string(),
                format!("({e})"),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    println!(
        "{}",
        render_table(&["K", "proof digits", "VLIW overhead", "localities"], &rows)
    );

    // --- 2. ε sweep -------------------------------------------------------
    println!("\nε sweep (epic, 872 ops, K = 2%):\n");
    let g = mediabench(&mediabench_apps()[2], 0);
    let mut rows = Vec::new();
    for eps in [0.0f64, 0.1, 0.2, 0.3, 0.4] {
        // Tight budget (slack 1.0) so the laxity margin actually binds.
        let wm = SchedulingWatermarker::new(SchedWmConfig {
            epsilon: eps,
            slack_factor: 1.0,
            ..SchedWmConfig::with_node_fraction(0.02)
        });
        match wm.embed(&g, &sig) {
            Ok(emb) => {
                let realized = SchedulingWatermarker::realize_as_unit_ops(&g, &emb.edges);
                let perf = overhead_percent(&g, &realized, &machine);
                rows.push(vec![
                    format!("{eps:.1}"),
                    emb.edges.len().to_string(),
                    format!("{:.2}%", perf.overhead_percent()),
                ]);
            }
            Err(e) => rows.push(vec![format!("{eps:.1}"), format!("({e})"), "-".into()]),
        }
    }
    println!(
        "{}",
        render_table(&["epsilon", "edges placed", "VLIW overhead"], &rows)
    );

    // --- 3. Slack-factor sweep --------------------------------------------
    println!("\nslack-factor sweep (PEGWIT, 658 ops, K = 2%):\n");
    let g = mediabench(&mediabench_apps()[3], 0);
    let mut rows = Vec::new();
    for slack in [1.0f64, 1.25, 1.5, 2.0, 3.0] {
        let wm = SchedulingWatermarker::new(SchedWmConfig {
            slack_factor: slack,
            ..SchedWmConfig::with_node_fraction(0.02)
        });
        match wm.embed(&g, &sig) {
            Ok(emb) => {
                let ev = wm.detect(&emb.schedule, &g, &sig).expect("detects");
                rows.push(vec![
                    format!("{slack:.2}"),
                    emb.available_steps.to_string(),
                    format!("{:.1}", -ev.log10_pc),
                ]);
            }
            Err(e) => rows.push(vec![format!("{slack:.2}"), format!("({e})"), "-".into()]),
        }
    }
    println!(
        "{}",
        render_table(&["slack factor", "steps", "proof digits"], &rows)
    );
    println!(
        "(wider windows admit more orderings per pair: each edge carries\n\
         slightly less evidence, but far more edges become placeable)"
    );

    // --- 4. Estimator calibration -----------------------------------------
    println!("\nexact vs. pair-window Pc on random 8-op subproblems:\n");
    let mut rows = Vec::new();
    for seed in 0..6u64 {
        let g = random_dag(12, 0.18, seed);
        let t = UnitTiming::new(&g);
        let steps = t.critical_path().max(1) + 3;
        let w = Windows::new(&g, steps).expect("feasible");
        let subset: Vec<NodeId> = g
            .node_ids()
            .filter(|&n| g.kind(n).is_schedulable())
            .take(8)
            .collect();
        // One synthetic constraint between the first incomparable pair.
        let Some((s, d)) = first_incomparable(&g, &subset) else {
            continue;
        };
        let exact = exact_pc(&g, &w, &subset, &[(s, d)], 50_000_000);
        let approx = 10f64.powf(log10_pc_pairs(&w, &[(s, d)]));
        rows.push(vec![
            format!("seed {seed}"),
            exact.map_or("cap".into(), |p| format!("{p:.4}")),
            format!("{approx:.4}"),
        ]);
    }
    println!(
        "{}",
        render_table(&["instance", "exact Pc", "pair-window Pc"], &rows)
    );
    println!(
        "(the pair-window estimate tracks the exact count within a small\n\
         factor on independent pairs; dependence chains make it conservative)"
    );
}

fn first_incomparable(g: &localwm_cdfg::Cdfg, subset: &[NodeId]) -> Option<(NodeId, NodeId)> {
    for (i, &a) in subset.iter().enumerate() {
        for &b in &subset[i + 1..] {
            if !g.reaches(a, b) && !g.reaches(b, a) {
                return Some((a, b));
            }
        }
    }
    None
}
