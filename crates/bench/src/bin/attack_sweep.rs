//! Cost and outcome of the adversarial robustness sweep.
//!
//! Runs the full `localwm-attack` strength engine — embed once, then every
//! attack kind (reschedule, rewire, resynth, strip) at every budget level,
//! re-detecting after each — over a small design portfolio, and records
//! both what it costs (wall time per sweep) and what it finds (the
//! corpus-wide survival/strength rows). The sweep itself is fully seeded,
//! so the robustness numbers are byte-stable run to run; only the timing
//! columns move with the host.
//!
//! ```text
//! cargo run --release -p localwm-bench --bin attack_sweep            # full
//! cargo run --release -p localwm-bench --bin attack_sweep -- --quick # CI smoke
//! ```
//!
//! Results land in `BENCH_attack.json` (or the path given after the flags).

use std::time::Instant;

use localwm_attack::{aggregate, strength_report_in, StrengthConfig, DEFAULT_BUDGETS};
use localwm_bench::report::render_table;
use localwm_cdfg::designs::iir4_parallel;
use localwm_cdfg::generators::{layered, mediabench, mediabench_apps, LayeredConfig};
use localwm_cdfg::Cdfg;
use localwm_core::{SchedWmConfig, Signature};
use localwm_engine::{DesignContext, Parallelism};
use serde::{Serialize, Value};

const SWEEP_SEED: u64 = 7;
const AUTHOR: &str = "bench-author";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_attack.json".to_owned());

    let layered_design = |ops: usize, layers: usize, seed: u64| {
        layered(&LayeredConfig {
            ops,
            layers,
            seed,
            ..LayeredConfig::default()
        })
    };
    let mut designs: Vec<(String, Cdfg)> = vec![
        ("iir4".to_owned(), iir4_parallel()),
        ("layered-120".to_owned(), layered_design(120, 12, 42)),
    ];
    let budgets: Vec<f64> = if quick {
        vec![0.0, 0.15, 0.45]
    } else {
        designs.push(("layered-400".to_owned(), layered_design(400, 16, 7)));
        designs.push((
            "mediabench-0".to_owned(),
            mediabench(&mediabench_apps()[0], 0),
        ));
        DEFAULT_BUDGETS.to_vec()
    };
    let cfg = StrengthConfig {
        budgets,
        seed: SWEEP_SEED,
        wm: SchedWmConfig::with_node_fraction(0.25),
    };
    let sig = Signature::from_author(AUTHOR);
    let par = Parallelism::from_env();

    let mut entries: Vec<Value> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut reports = Vec::new();
    for (name, graph) in &designs {
        let ctx = DesignContext::new(graph.clone());
        // Warm-up embeds the design once (allocator, memoized builders),
        // then the measured sweeps run end to end.
        let _ = strength_report_in(&ctx, &sig, par, &cfg).expect("portfolio designs embed");
        // The sweep grid fans out over the engine pool; measure it against
        // the serial sweep and prove the parallel report is byte-identical
        // (the per-cell RNG streams derive from the master seed alone).
        let start = Instant::now();
        let serial =
            strength_report_in(&ctx, &sig, Parallelism::Serial, &cfg).expect("serial sweep");
        let serial_ms = start.elapsed().as_nanos() as f64 / 1e6;
        let start = Instant::now();
        let report = strength_report_in(&ctx, &sig, par, &cfg).expect("portfolio designs embed");
        let ms = start.elapsed().as_nanos() as f64 / 1e6;
        assert_eq!(
            serde_json::to_string(&serial.to_value()),
            serde_json::to_string(&report.to_value()),
            "parallel sweep must be byte-identical to serial"
        );
        rows.push(vec![
            format!("attack-sweep/{name}"),
            report.ops.to_string(),
            report.wm_edges.to_string(),
            report.cells.len().to_string(),
            format!("{ms:.1}"),
        ]);
        entries.push(Value::Object(vec![
            ("name".to_owned(), Value::Str(name.clone())),
            ("ops".to_owned(), Value::Int(report.ops as i64)),
            ("wm_edges".to_owned(), Value::Int(report.wm_edges as i64)),
            ("cells".to_owned(), Value::Int(report.cells.len() as i64)),
            // Explains sub-100% survival at budget 0: a design too small
            // to host a strong watermark (e.g. iir4's 5 edges) never
            // reaches the 1e-6 forensic threshold, attacked or not.
            (
                "baseline_log10_pc".to_owned(),
                Value::Float((report.baseline_log10_pc * 10.0).round() / 10.0),
            ),
            (
                "sweep_ms".to_owned(),
                Value::Float((ms * 10.0).round() / 10.0),
            ),
            (
                "serial_sweep_ms".to_owned(),
                Value::Float((serial_ms * 10.0).round() / 10.0),
            ),
            (
                "parallel_speedup".to_owned(),
                Value::Float(((serial_ms / ms) * 100.0).round() / 100.0),
            ),
        ]));
        reports.push(report);
    }
    let agg = aggregate(&reports);

    print!(
        "{}",
        render_table(
            &["benchmark", "ops", "wm edges", "cells", "sweep ms"],
            &rows
        )
    );
    let agg_rows: Vec<Vec<String>> = agg
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.budget),
                format!("{:.0}%", 100.0 * r.survival_rate),
                format!("{:.6}", r.mean_strength),
                format!("{:+.2}", r.mean_steps_delta),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["budget", "survival", "mean strength", "steps delta"],
            &agg_rows
        )
    );

    let note = format!(
        "attack_sweep: the localwm-attack strength engine (embed once at \
         fraction 0.25, then every attack kind at every budget level with \
         re-detection, seed {SWEEP_SEED}) over {} design(s). The aggregate \
         rows are the corpus-wide robustness table — fully seeded, so they \
         are byte-stable; sweep_ms is the pool-parallel sweep's wall time \
         and serial_sweep_ms the single-thread sweep's (byte-identical \
         reports, asserted) on this host ({} CPU core(s)).",
        designs.len(),
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    );
    let report = Value::Object(vec![
        ("note".to_owned(), Value::Str(note)),
        ("seed".to_owned(), Value::Int(SWEEP_SEED as i64)),
        ("designs".to_owned(), Value::Array(entries)),
        (
            "aggregate".to_owned(),
            Value::Array(agg.iter().map(Serialize::to_value).collect()),
        ),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, format!("{json}\n")).expect("write report");
    println!("wrote {out_path}");
}
