//! Incremental-vs-scratch cost of interactive edit traces.
//!
//! Replays one seeded edit trace (temporal-edge churn + `analyze`/`timing`
//! queries; see `localwm_testkit::trace`) through both session lanes:
//!
//! * *incremental* — one held session; mutations dirty-cone patch the
//!   derived analyses and the Monte-Carlo capture is re-used per sample.
//! * *scratch* — a fresh session per step: re-parse the design, replay
//!   every prior edit batch, recompute the analysis from nothing. This is
//!   exactly what a session-less client pays per round trip.
//!
//! Both lanes produce byte-identical response lines (asserted here — the
//! benchmark doubles as an oracle run); the report records the per-step
//! means and their ratio.
//!
//! ```text
//! cargo run --release -p localwm-bench --bin edit_trace            # full
//! cargo run --release -p localwm-bench --bin edit_trace -- --quick # CI smoke
//! ```
//!
//! Results land in `BENCH_incremental.json` (or the path given after the
//! flags).

use std::time::Instant;

use localwm_bench::report::render_table;
use localwm_cdfg::write_cdfg;
use localwm_testkit::trace::{
    named_layered, parse_trace, replay_incremental, replay_scratch, seeded_trace, TraceSpec,
};
use serde::Value;

struct Shape {
    label: &'static str,
    ops: usize,
    edit_steps: usize,
    samples: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_incremental.json".to_owned());
    let shape = if quick {
        Shape {
            label: "quick",
            ops: 400,
            edit_steps: 10,
            samples: 24,
        }
    } else {
        Shape {
            label: "full",
            ops: 2000,
            edit_steps: 30,
            samples: 48,
        }
    };

    let graph = named_layered(shape.ops, 8, shape.ops / 50, 17);
    let design = write_cdfg(&graph);
    let trace = seeded_trace(
        &graph,
        &TraceSpec {
            seed: 23,
            edit_steps: shape.edit_steps,
            edits_per_step: 2,
            samples: shape.samples,
        },
    )
    .expect("generated design is traceable");
    let steps = parse_trace(&trace).expect("generated trace parses");

    // Warm-up pass (allocator, page cache), then the measured passes.
    let _ = replay_incremental(&design, &steps, "warm").expect("warmup");
    let start = Instant::now();
    let inc_lines = replay_incremental(&design, &steps, "bench").expect("incremental lane");
    let inc_ns = start.elapsed().as_nanos() as f64 / steps.len() as f64;
    let start = Instant::now();
    let scratch_lines = replay_scratch(&design, &steps, "bench").expect("scratch lane");
    let scratch_ns = start.elapsed().as_nanos() as f64 / steps.len() as f64;

    assert_eq!(
        inc_lines, scratch_lines,
        "incremental and scratch lanes must stay byte-identical"
    );

    let speedup = scratch_ns / inc_ns;
    let prefix = format!("incremental/{}/", shape.label);
    let results = [
        (format!("{prefix}trace-step/held-session"), inc_ns),
        (format!("{prefix}trace-step/fresh-per-step"), scratch_ns),
    ];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, ns)| {
            vec![
                name.clone(),
                format!("{:.1}", ns / 1e3),
                steps.len().to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["benchmark", "mean µs/step", "n"], &rows)
    );
    println!(
        "speedup: {speedup:.1}x ({} ops, {} steps, {} samples/query)",
        shape.ops,
        steps.len(),
        shape.samples
    );

    let entries: Vec<Value> = results
        .iter()
        .map(|(name, ns)| {
            Value::Object(vec![
                ("name".to_owned(), Value::Str(name.clone())),
                (
                    "mean_ns".to_owned(),
                    Value::Float((ns * 10.0).round() / 10.0),
                ),
                ("samples".to_owned(), Value::Int(steps.len() as i64)),
            ])
        })
        .collect();
    let note = format!(
        "edit_trace: one seeded interactive trace ({} temporal-edge edit \
         batches, an analyze of {} Monte-Carlo samples after each, a timing \
         query every fourth) over a {}-op layered design, replayed through a \
         held incremental session (dirty-cone patching, reusable MC capture) \
         vs a fresh context per step (re-parse + full recompute — the \
         session-less cost). Both lanes byte-identical by assertion. Host \
         had {} CPU core(s); both lanes are single-threaded serial, so the \
         ratio is hardware-independent.",
        shape.edit_steps,
        shape.samples,
        shape.ops,
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    );
    let report = Value::Object(vec![
        ("note".to_owned(), Value::Str(note)),
        (
            "speedup".to_owned(),
            Value::Float((speedup * 10.0).round() / 10.0),
        ),
        ("benchmarks".to_owned(), Value::Array(entries)),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, format!("{json}\n")).expect("write report");
    println!("wrote {out_path}");
}
