//! Request-path throughput benchmark: warm cache-hit `timing` requests
//! over a loopback connection, serial (one call per round trip) vs
//! pipelined at in-flight windows 1/4/8, plus allocations per warm
//! request from the counting allocator (`--features alloc-count`).
//!
//! Writes `BENCH_throughput.json` (or `--out`) in the shape of the other
//! `BENCH_*.json` reports. `--baseline <path>` embeds a previously
//! captured run (the committed report carries the pre-optimization
//! baseline this way, so the alloc-budget regression check and the
//! README numbers both resolve from one file). `--quick` trims request
//! counts for the CI lane and checks the two hot-path regressions: the
//! window-8 pipelined lane must beat window-1, and warm-hit allocations
//! must stay within 1.2x the recorded budget.

use std::time::{Duration, Instant};

use localwm_bench::report::render_table;
use localwm_cdfg::designs::iir4_parallel;
use localwm_cdfg::generators::{mediabench, mediabench_apps};
use localwm_cdfg::write_cdfg;
use localwm_serve::{Client, Request, RequestKind, ServeConfig, ServerHandle};
use serde::Value;

#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: localwm_engine::CountingAlloc = localwm_engine::CountingAlloc;

fn start_server(workers: usize) -> ServerHandle {
    localwm_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_depth: 256,
        cache_cap: 16,
        default_timeout_ms: None,
        metrics_out: None,
        fault_plan: None,
        session_idle_ms: None,
        store_dir: None,
        pipeline_window: localwm_serve::server::DEFAULT_PIPELINE_WINDOW,
    })
    .expect("bind loopback")
}

fn timing_request(id: u64, design: &str) -> Request {
    let mut r = Request::new(RequestKind::Timing);
    r.id = Some(id);
    r.design = Some(design.to_owned());
    r
}

struct Lane {
    name: String,
    req_per_s: f64,
    requests: usize,
    allocs_per_req: Option<f64>,
}

/// Warm cache-hit serial lane: one request per round trip on one kept
/// connection. Returns (req/s, allocations per request) — the alloc
/// column is `None` without the `alloc-count` feature.
fn serial_lane(addr: &str, design: &str, requests: usize) -> (f64, Option<f64>) {
    let mut c = Client::connect_within(addr, Duration::from_secs(5)).expect("connect");
    for _ in 0..3 {
        assert!(c.call(&timing_request(1, design)).expect("warmup").ok);
    }
    #[cfg(feature = "alloc-count")]
    let before = localwm_engine::alloc_stats();
    let start = Instant::now();
    for _ in 0..requests {
        assert!(c.call(&timing_request(1, design)).expect("request").ok);
    }
    let elapsed = start.elapsed();
    #[cfg(feature = "alloc-count")]
    let allocs = {
        let delta = localwm_engine::alloc_stats().delta(&before);
        Some(delta.allocs as f64 / requests as f64)
    };
    #[cfg(not(feature = "alloc-count"))]
    let allocs = None;
    (requests as f64 / elapsed.as_secs_f64(), allocs)
}

/// Warm-repeat lane: the `--repeat N` warm path through
/// [`Client::call_repeated`] — one request serialized once, responses
/// read back-to-back on the kept-alive connection. This is the lane the
/// allocation budget is recorded against.
fn repeat_lane(addr: &str, design: &str, requests: usize) -> (f64, Option<f64>) {
    let mut c = Client::connect_within(addr, Duration::from_secs(5)).expect("connect");
    let req = timing_request(1, design);
    let _ = c.call_repeated(&req, 3).expect("warmup");
    #[cfg(feature = "alloc-count")]
    let before = localwm_engine::alloc_stats();
    let start = Instant::now();
    let (last, latencies) = c.call_repeated(&req, requests).expect("repeat");
    let elapsed = start.elapsed();
    assert!(last.ok, "repeat request failed: {:?}", last.error);
    assert_eq!(latencies.len(), requests);
    #[cfg(feature = "alloc-count")]
    let allocs = {
        let delta = localwm_engine::alloc_stats().delta(&before);
        Some(delta.allocs as f64 / requests as f64)
    };
    #[cfg(not(feature = "alloc-count"))]
    let allocs = None;
    (requests as f64 / elapsed.as_secs_f64(), allocs)
}

/// Pipelined lane at a fixed in-flight `window`: bursts of identical warm
/// `timing` requests (distinct ids) sent through `call_pipelined`, which
/// keeps `window` requests in flight on the wire per round trip.
fn pipelined_lane(addr: &str, design: &str, requests: usize, window: usize) -> f64 {
    let mut c = Client::connect_within(addr, Duration::from_secs(5)).expect("connect");
    for _ in 0..3 {
        assert!(c.call(&timing_request(1, design)).expect("warmup").ok);
    }
    let bursts = requests / window;
    // Batches are built outside the timed region: the lane measures the
    // wire and server, and both window sizes get the same treatment.
    let batches: Vec<Vec<Request>> = (0..bursts)
        .map(|b| {
            (0..window)
                .map(|i| timing_request((b * window + i) as u64, design))
                .collect()
        })
        .collect();
    let start = Instant::now();
    for batch in &batches {
        let responses = c.call_pipelined(batch).expect("pipelined burst");
        assert_eq!(responses.len(), window);
        for (i, resp) in responses.iter().enumerate() {
            assert!(resp.ok, "pipelined request failed: {:?}", resp.error);
            assert_eq!(resp.id, batch[i].id, "responses arrive in request order");
        }
    }
    let elapsed = start.elapsed();
    (bursts * window) as f64 / elapsed.as_secs_f64()
}

/// A previously captured report to embed as the baseline section.
fn load_baseline(path: &str) -> Option<Value> {
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str::<Value>(&text).ok()
}

/// `benchmarks[name].{req_per_s, allocs_per_request}` out of a report doc.
fn lane_stat(doc: &Value, name: &str, field: &str) -> Option<f64> {
    let Some(Value::Array(entries)) = doc.field("benchmarks") else {
        return None;
    };
    entries
        .iter()
        .find(|e| matches!(e.field("name"), Some(Value::Str(s)) if s == name))
        .and_then(|e| match e.field(field) {
            Some(Value::Float(f)) => Some(*f),
            Some(Value::Int(i)) => Some(*i as f64),
            _ => None,
        })
}

fn main() {
    let mut quick = false;
    let mut serial_only = false;
    let mut out_path = "BENCH_throughput.json".to_owned();
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--serial-only" => serial_only = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline needs a path")),
            other => {
                panic!("unknown argument {other} (expected --quick/--serial-only/--out/--baseline)")
            }
        }
    }
    let requests = if quick { 400 } else { 4000 };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let apps = mediabench_apps();
    let designs = [
        ("iir4", write_cdfg(&iir4_parallel())),
        ("mediabench-0", write_cdfg(&mediabench(&apps[0], 0))),
    ];

    let handle = start_server(2);
    let addr = handle.addr().to_string();
    let mut lanes: Vec<Lane> = Vec::new();
    for (tag, design) in &designs {
        let (rps, allocs) = serial_lane(&addr, design, requests);
        lanes.push(Lane {
            name: format!("serve/throughput/{tag}/serial"),
            req_per_s: rps,
            requests,
            allocs_per_req: allocs,
        });
        let (rps, allocs) = repeat_lane(&addr, design, requests);
        lanes.push(Lane {
            name: format!("serve/throughput/{tag}/repeat"),
            req_per_s: rps,
            requests,
            allocs_per_req: allocs,
        });
        if serial_only {
            continue;
        }
        for window in [1usize, 4, 8] {
            let rps = pipelined_lane(&addr, design, requests, window);
            lanes.push(Lane {
                name: format!("serve/throughput/{tag}/pipelined/w{window}"),
                req_per_s: rps,
                requests,
                allocs_per_req: None,
            });
        }
    }
    handle.shutdown();

    let rows: Vec<Vec<String>> = lanes
        .iter()
        .map(|l| {
            vec![
                l.name.clone(),
                format!("{:.0}", l.req_per_s),
                l.allocs_per_req
                    .map_or_else(|| "-".to_owned(), |a| format!("{a:.1}")),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["benchmark", "req/s", "allocs/req"], &rows)
    );

    let entries: Vec<Value> = lanes
        .iter()
        .map(|l| {
            let mut fields = vec![
                ("name".to_owned(), Value::Str(l.name.clone())),
                (
                    "req_per_s".to_owned(),
                    Value::Float((l.req_per_s * 10.0).round() / 10.0),
                ),
                ("requests".to_owned(), Value::Int(l.requests as i64)),
            ];
            if let Some(a) = l.allocs_per_req {
                fields.push((
                    "allocs_per_request".to_owned(),
                    Value::Float((a * 10.0).round() / 10.0),
                ));
            }
            Value::Object(fields)
        })
        .collect();
    let note = format!(
        "throughput_load: warm cache-hit timing requests over one loopback \
         connection, {requests} requests per lane, 2 workers; serial = one \
         call per round trip, pipelined/wN = call_pipelined bursts with N \
         requests in flight (distinct ids, so w>1 lanes also exercise \
         single-flight coalescing of identical warm work); allocs/request = \
         process-wide counting-allocator delta over the serial lane (client \
         and server share the process, so the number covers the whole \
         request path); host had {cores} CPU core(s)"
    );
    let mut doc_fields = vec![
        ("note".to_owned(), Value::Str(note)),
        ("benchmarks".to_owned(), Value::Array(entries)),
    ];
    let baseline_doc = baseline_path.as_deref().and_then(load_baseline);
    if let Some(b) = &baseline_doc {
        doc_fields.push(("baseline".to_owned(), b.clone()));
    }
    let doc = Value::Object(doc_fields);
    let json = serde_json::to_string_pretty(&doc).expect("render json");
    std::fs::write(&out_path, json + "\n").expect("write report");
    eprintln!("wrote {out_path}");

    // Regression gates (CI `--quick` lane): pipelining must win, and the
    // warm hot path must stay inside its recorded allocation budget.
    if quick && !serial_only {
        let iir_w8 = lanes
            .iter()
            .find(|l| l.name == "serve/throughput/iir4/pipelined/w8")
            .expect("w8 lane");
        let iir_w1 = lanes
            .iter()
            .find(|l| l.name == "serve/throughput/iir4/pipelined/w1")
            .expect("w1 lane");
        if iir_w8.req_per_s < iir_w1.req_per_s {
            eprintln!(
                "REGRESSION: pipelined w8 ({:.0} req/s) slower than w1 ({:.0} req/s)",
                iir_w8.req_per_s, iir_w1.req_per_s
            );
            std::process::exit(1);
        }
    }
    if let (Some(b), Some(measured)) = (
        &baseline_doc,
        lanes
            .iter()
            .find(|l| l.name == "serve/throughput/iir4/repeat")
            .and_then(|l| l.allocs_per_req),
    ) {
        if let Some(budget) = lane_stat(b, "serve/throughput/iir4/repeat", "allocs_per_request") {
            if measured > budget * 1.2 {
                eprintln!(
                    "REGRESSION: {measured:.1} allocs/request exceeds the \
                     recorded budget {budget:.1} by more than 20%"
                );
                std::process::exit(1);
            }
        }
    }
}
