//! Demonstrates the paper's §III claim that local watermarking is a
//! *generic* combinatorial-optimization IPP paradigm, on its own
//! illustrating example: graph coloring ("a local watermark is embedded in
//! a random subgraph").
//!
//! For a sweep of random graphs: embed signature-selected must-differ
//! constraints in BFS localities, then report color overhead, detection
//! strength, and the chance a plain coloring satisfies the constraints.
//!
//! Run with `cargo run --release -p localwm-bench --bin coloring`.

use localwm_bench::report::render_table;
use localwm_coloring::{greedy_coloring, ColoringConfig, ColoringWatermarker, UGraph};
use localwm_core::Signature;

fn main() {
    println!("Graph-coloring local watermarks (paper §III generalization)\n");
    let wm = ColoringWatermarker::new(ColoringConfig::default());
    let sig = Signature::from_author("coloring-bench");
    let mut rows = Vec::new();
    for (n, p) in [(200usize, 0.05f64), (400, 0.04), (800, 0.02), (1600, 0.01)] {
        let g = UGraph::random(n, p, 77);
        let plain = greedy_coloring(&g);
        match wm.embed(&g, &sig) {
            Ok(emb) => {
                let ev = wm
                    .detect(&emb.coloring, &g, &sig)
                    .expect("derivation replays");
                assert!(ev.is_match());
                let miss = wm.detect(&plain, &g, &sig).expect("derivation replays");
                rows.push(vec![
                    format!("G({n}, {p})"),
                    g.edge_count().to_string(),
                    plain.color_count().to_string(),
                    emb.coloring.color_count().to_string(),
                    format!("10^{:.1}", ev.log10_pc),
                    format!("{:.0}%", 100.0 * miss.satisfied_fraction()),
                ]);
            }
            Err(e) => rows.push(vec![
                format!("G({n}, {p})"),
                g.edge_count().to_string(),
                plain.color_count().to_string(),
                format!("({e})"),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "graph",
                "edges",
                "colors plain",
                "colors marked",
                "Pc",
                "plain chance hit rate",
            ],
            &rows
        )
    );
    println!(
        "Shape: 48 local constraints cost zero-to-two colors, verify with\n\
         Pc well below 1, and an unconstrained coloring satisfies most but\n\
         not all constraints — the generic paradigm transfers unchanged."
    );
}
