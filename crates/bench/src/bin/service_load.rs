//! Load benchmark for `localwm-serve`: cold- vs warm-cache request latency
//! and multi-client throughput at 1, 4 and 8 workers.
//!
//! Servers run in-process on a loopback socket; clients are real TCP
//! connections through [`localwm_serve::Client`]. Writes `BENCH_service.json`
//! (or the path given as the first argument) in the same shape as the other
//! `BENCH_*.json` reports.

use std::time::{Duration, Instant};

use localwm_bench::report::render_table;
use localwm_cdfg::generators::{mediabench, mediabench_apps};
use localwm_cdfg::write_cdfg;
use localwm_serve::{Client, Request, RequestKind, ServeConfig, ServerHandle};
use serde::Value;

struct Sample {
    name: String,
    mean_ns: f64,
    samples: usize,
}

fn start_server(workers: usize) -> ServerHandle {
    localwm_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_depth: 256,
        cache_cap: 16,
        default_timeout_ms: None,
        metrics_out: None,
        fault_plan: None,
        session_idle_ms: None,
        store_dir: None,
        pipeline_window: localwm_serve::server::DEFAULT_PIPELINE_WINDOW,
    })
    .expect("bind loopback")
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect_within(&handle.addr().to_string(), Duration::from_secs(5)).expect("connect")
}

fn timing_request(design: &str) -> Request {
    let mut r = Request::new(RequestKind::Timing);
    r.design = Some(design.to_owned());
    r
}

fn analyze_request(design: &str) -> Request {
    let mut r = Request::new(RequestKind::Analyze);
    r.design = Some(design.to_owned());
    r.samples = Some(2_000);
    r
}

/// Mean per-request latency of sending `reqs` serially on one connection.
fn mean_latency_ns(client: &mut Client, reqs: &[Request]) -> f64 {
    let start = Instant::now();
    for r in reqs {
        let resp = client.call(r).expect("request");
        assert!(resp.ok, "benchmark request failed: {:?}", resp.error);
    }
    start.elapsed().as_nanos() as f64 / reqs.len() as f64
}

fn cold_vs_warm(designs: &[String], out: &mut Vec<Sample>) {
    let handle = start_server(4);
    let mut client = connect(&handle);
    let reqs: Vec<Request> = designs.iter().map(|d| timing_request(d)).collect();
    // Cold: every design misses the context cache and builds its analyses.
    let cold = mean_latency_ns(&mut client, &reqs);
    // Warm: identical requests served from the shared-context cache.
    let warm = mean_latency_ns(&mut client, &reqs);
    handle.shutdown();
    out.push(Sample {
        name: "serve/timing/cold-cache".to_owned(),
        mean_ns: cold,
        samples: designs.len(),
    });
    out.push(Sample {
        name: "serve/timing/warm-cache".to_owned(),
        mean_ns: warm,
        samples: designs.len(),
    });
}

fn throughput(designs: &[String], workers: usize, out: &mut Vec<Sample>) {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 12;
    let handle = start_server(workers);
    let addr = handle.addr().to_string();
    // Pre-warm the context cache so every worker count sees the same work.
    let mut warmup = connect(&handle);
    for d in designs {
        assert!(warmup.call(&timing_request(d)).expect("warmup").ok);
    }
    let start = Instant::now();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            let designs = designs.to_vec();
            std::thread::spawn(move || {
                let mut client =
                    Client::connect_within(&addr, Duration::from_secs(5)).expect("connect");
                for i in 0..PER_CLIENT {
                    let d = &designs[(c + i) % designs.len()];
                    let resp = client.call(&analyze_request(d)).expect("request");
                    assert!(resp.ok, "load request failed: {:?}", resp.error);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let total = CLIENTS * PER_CLIENT;
    let mean_ns = start.elapsed().as_nanos() as f64 / total as f64;
    handle.shutdown();
    out.push(Sample {
        name: format!("serve/analyze-load/workers-{workers}"),
        mean_ns,
        samples: total,
    });
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_service.json".to_owned());
    let apps = mediabench_apps();
    let designs: Vec<String> = apps
        .iter()
        .take(6)
        .map(|app| write_cdfg(&mediabench(app, 0)))
        .collect();

    let mut samples = Vec::new();
    cold_vs_warm(&designs, &mut samples);
    for workers in [1, 4, 8] {
        throughput(&designs, workers, &mut samples);
    }

    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                format!("{:.1}", s.mean_ns / 1e3),
                s.samples.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["benchmark", "mean µs/req", "n"], &rows)
    );

    let entries: Vec<Value> = samples
        .iter()
        .map(|s| {
            Value::Object(vec![
                ("name".to_owned(), Value::Str(s.name.clone())),
                (
                    "mean_ns".to_owned(),
                    Value::Float((s.mean_ns * 10.0).round() / 10.0),
                ),
                ("samples".to_owned(), Value::Int(s.samples as i64)),
            ])
        })
        .collect();
    let note = format!(
        "service_load: in-process localwm-serve on loopback TCP; cold/warm = \
         serial timing requests over 6 mediabench designs before/after the \
         context cache is populated; analyze-load = 8 sync clients x 12 \
         analyze(samples=2000) requests, mean wall-clock per request; host \
         had {} CPU core(s), so worker scaling is bounded accordingly",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    let doc = Value::Object(vec![
        ("note".to_owned(), Value::Str(note)),
        ("benchmarks".to_owned(), Value::Array(entries)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("render json");
    std::fs::write(&out_path, json + "\n").expect("write report");
    eprintln!("wrote {out_path}");
}
