//! Regenerates the paper's **Fig. 3** quantities: exact schedule-space
//! counts for local watermarking on the fourth-order parallel IIR filter.
//!
//! Two experiments:
//!
//! 1. The pairwise example — "two operations O\[i\] and O\[j\] can be
//!    scheduled in 77 different ways; there are only ten possible
//!    schedulings how O\[i\] can be scheduled before O\[j\]" — reproduced
//!    *exactly* by constructing the implied mobility windows (7 and 11
//!    steps wide with a 6-step offset).
//! 2. The subtree example — the paper reports 166 schedules for the
//!    unconstrained subtree and 15 under the watermark's five temporal
//!    edges (`P_c = 15/166 ≈ 0.09`). The figure's exact drawing is not
//!    machine-readable, so we reconstruct the subtree on our IIR topology,
//!    print our exact counts, and verify the watermarked count divides the
//!    space by an order of magnitude, as in the paper.
//!
//! Run with `cargo run --release -p localwm-bench --bin fig3`.

use localwm_cdfg::designs::iir4_parallel;
use localwm_cdfg::{Cdfg, NodeId, OpKind};
use localwm_core::pc::{exact_pc, pair_order_probability};
use localwm_sched::enumerate::SubProblem;
use localwm_sched::Windows;

/// Builds a graph in which `O\[i\]` has window `[7, 13]` and `O\[j\]` has
/// window `[1, 11]` under 13 available steps — the windows implied by the
/// paper's 77/10 counts.
fn pair_example() -> (Cdfg, NodeId, NodeId) {
    let mut g = Cdfg::new();
    let x = g.add_node(OpKind::Input);
    // O[i] sits after a 6-op chain: asap 7; no successors: alap 13.
    let mut prev = x;
    for _ in 0..6 {
        let n = g.add_node(OpKind::Not);
        g.add_data_edge(prev, n).unwrap();
        prev = n;
    }
    let oi = g.add_node(OpKind::Neg);
    g.add_data_edge(prev, oi).unwrap();
    // O[j] starts fresh (asap 1) and feeds a 2-op chain: alap 11.
    let oj = g.add_node(OpKind::Neg);
    g.add_data_edge(x, oj).unwrap();
    let mut prev = oj;
    for _ in 0..2 {
        let n = g.add_node(OpKind::Not);
        g.add_data_edge(prev, n).unwrap();
        prev = n;
    }
    (g, oi, oj)
}

fn main() {
    println!("Fig. 3 — exact coincidence counts on the 4th-order IIR\n");

    // --- Pairwise 77-vs-10 example -------------------------------------
    let (g, oi, oj) = pair_example();
    let w = Windows::new(&g, 13).expect("13 steps cover the 7-op chain");
    let wi = (w.asap(oi), w.alap(oi));
    let wj = (w.asap(oj), w.alap(oj));
    let total = u64::from(wi.1 - wi.0 + 1) * u64::from(wj.1 - wj.0 + 1);
    let p = pair_order_probability(&w, oi, oj);
    let favorable = (p * total as f64).round() as u64;
    println!(
        "pair example: O[i] window [{},{}], O[j] window [{},{}]",
        wi.0, wi.1, wj.0, wj.1
    );
    println!(
        "  total pair placements: {total} (paper: 77); O[i] before O[j]: \
         {favorable} (paper: 10); psi_W/psi_N = {favorable}/{total}\n"
    );
    assert_eq!(total, 77, "window construction must give the paper's 77");
    assert_eq!(favorable, 10, "ordered count must give the paper's 10");

    // --- Subtree 166-vs-15 example --------------------------------------
    let g = iir4_parallel();
    let by = |n: &str| g.node_by_name(n).expect("named node");
    // The marked subtree: the eight coefficient multipliers plus the first
    // two adds of section one (a 10-node locality like the figure's).
    let subtree: Vec<NodeId> = ["C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8", "A1", "A2"]
        .iter()
        .map(|n| by(n))
        .collect();
    // The paper's temporal edges: sources C1,C2,C4,C7,A2 -> C3,C4,C8,C6,A3.
    // A3 lies outside the 10-node subtree in our reconstruction, so its
    // edge uses A2's in-subtree successor position instead (A2 -> C8).
    let edges: Vec<(NodeId, NodeId)> = vec![
        (by("C1"), by("C3")),
        (by("C2"), by("C4")),
        (by("C4"), by("C8")),
        (by("C7"), by("C6")),
        (by("A2"), by("C8")),
    ];
    for steps in [6u32, 7] {
        let w = Windows::new(&g, steps).expect("steps cover the critical path");
        let base = SubProblem::from_graph(&g, &w, &subtree);
        let total = base.count();
        let mut constrained = base.clone();
        for &(s, d) in &edges {
            constrained = constrained
                .with_order(s, d)
                .expect("edge endpoints in subtree");
        }
        let with = constrained.count();
        let pc = exact_pc(&g, &w, &subtree, &edges, u128::MAX).expect("small subtree");
        println!(
            "subtree (10 nodes, {steps} steps): schedules {total} \
             (paper: 166), watermarked {with} (paper: 15), Pc = {pc:.4} \
             (paper: 15/166 = {:.4})",
            15.0 / 166.0
        );
        assert!(with > 0, "constraints must be satisfiable");
        assert!(
            (with as f64) < total as f64 / 2.0,
            "watermark must cut the schedule space substantially"
        );
    }
    println!(
        "\nThe figure's exact subtree drawing is not machine-readable; our\n\
         reconstruction reproduces the *shape* (a five-edge watermark\n\
         shrinks the subtree's schedule space by one to two orders of\n\
         magnitude, as the paper's 166 -> 15 does). See EXPERIMENTS.md."
    );
}
