//! Detection robustness: true-positive vs. false-positive behaviour of the
//! tolerant (Poisson-binomial) verdict under increasing tampering.
//!
//! For a grid of tampering strengths, measure:
//!
//! * **TPR** — how often the true author's signature still attributes the
//!   tampered schedule (over attack seeds);
//! * **FPR** — how often any of a panel of impostor signatures attributes
//!   it (should stay at zero for a sound verdict).
//!
//! This quantifies the claim behind local watermarks: erasing the mark
//! requires redesign-scale perturbation, while false accusations stay
//! impossible at the chosen significance.
//!
//! Run with `cargo run --release -p localwm-bench --bin robustness`.

use localwm_bench::report::render_table;
use localwm_cdfg::generators::{mediabench, mediabench_apps};
use localwm_core::attack::perturb_schedule_with;
use localwm_core::{SchedWmConfig, SchedulingWatermarker, Signature};

const SIGNIFICANCE: f64 = 1e-6;
const ATTACK_SEEDS: u64 = 6;
const IMPOSTORS: usize = 4;

fn main() {
    let app = mediabench_apps()[5]; // GSM
    let g = mediabench(&app, 0);
    let wm = SchedulingWatermarker::new(SchedWmConfig {
        k: 50,
        ..SchedWmConfig::default()
    });
    let author = Signature::from_author("robustness-author");
    let emb = wm.embed(&g, &author).expect("embeds");
    println!(
        "Detection robustness on {} ({} ops), K = {}, significance {SIGNIFICANCE:.0e}\n",
        app.name,
        app.ops,
        emb.edges.len()
    );

    let impostors: Vec<Signature> = (0..IMPOSTORS)
        .map(|i| Signature::from_author(&format!("robustness-impostor-{i}")))
        .collect();

    let mut rows = Vec::new();
    for moves in [0usize, 100, 400, 1600, 6400, 25_600] {
        let mut strict_tp = 0u32;
        let mut tolerant_tp = 0u32;
        let mut fp = 0u32;
        let mut surv = 0.0;
        for seed in 0..ATTACK_SEEDS {
            let (tampered, _) = perturb_schedule_with(
                &g,
                &emb.schedule,
                emb.available_steps,
                moves,
                &mut localwm_prng::SplitMix64::new(seed),
            );
            let ev = wm.detect(&tampered, &g, &author).expect("detects");
            surv += ev.satisfied_fraction();
            strict_tp += u32::from(ev.is_match());
            tolerant_tp += u32::from(ev.is_match_with_tolerance(SIGNIFICANCE));
            for imp in &impostors {
                let wrong = wm.detect(&tampered, &g, imp).expect("detects");
                fp += u32::from(wrong.is_match_with_tolerance(SIGNIFICANCE));
            }
        }
        let total = ATTACK_SEEDS as f64;
        rows.push(vec![
            moves.to_string(),
            format!("{:.0}%", 100.0 * surv / total),
            format!("{:.0}%", 100.0 * f64::from(strict_tp) / total),
            format!("{:.0}%", 100.0 * f64::from(tolerant_tp) / total),
            format!("{:.0}%", 100.0 * f64::from(fp) / (total * IMPOSTORS as f64)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "attack moves",
                "constraints surviving",
                "strict TPR",
                "tolerant TPR",
                "FPR",
            ],
            &rows
        )
    );
    println!(
        "Shape: the strict verdict dies with the first violated constraint;\n\
         the tolerant verdict holds until the mark decays toward the chance\n\
         floor, with a false-positive rate pinned at zero by the 1e-6\n\
         significance bound."
    );
}
