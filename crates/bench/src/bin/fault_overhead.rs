//! Overhead of the fault-injection seams in `localwm-serve`.
//!
//! Measures warm-cache `timing` latency through a real loopback server in
//! two configurations: `fault_plan: None` (no injector installed) and an
//! *armed-but-idle* plan whose indices are unreachable, so every request
//! pays the per-operation counter tick + table probe but no fault ever
//! fires. Each request crosses the seams five times (socket read, queue
//! push, worker stall, cache evict, socket write).
//!
//! Run it twice and the report merges, keyed by build configuration:
//!
//! ```text
//! cargo run --release -p localwm-bench --bin fault_overhead
//! cargo run --release -p localwm-bench --bin fault_overhead --features fault-inject
//! ```
//!
//! The first build compiles `localwm-serve` without the `fault-inject`
//! feature — the production configuration, where no injector can exist
//! and the armed lane is skipped (arming would be silently ignored).
//! Results land in `BENCH_testkit.json` (or the path given as the first
//! argument); entries from the other configuration are preserved.

use std::time::{Duration, Instant};

use localwm_bench::report::render_table;
use localwm_cdfg::generators::{mediabench, mediabench_apps};
use localwm_cdfg::write_cdfg;
use localwm_serve::{
    Client, FaultAction, FaultPlan, FaultSpec, InjectionPoint, Request, RequestKind, ServeConfig,
    ServerHandle,
};
use serde::Value;

const ROUNDS: usize = 40;

fn cfg_prefix() -> &'static str {
    if cfg!(feature = "fault-inject") {
        "on"
    } else {
        "off"
    }
}

/// A plan that installs the injector but can never fire: every index sits
/// far past any operation counter this benchmark reaches.
fn armed_idle_plan() -> FaultPlan {
    FaultPlan {
        seed: 0,
        horizon: u64::MAX,
        faults: InjectionPoint::ALL
            .into_iter()
            .map(|point| FaultSpec {
                point,
                at_index: u64::MAX,
                action: match point {
                    InjectionPoint::SockRead => FaultAction::DropConnection,
                    InjectionPoint::SockWrite => FaultAction::DropResponse,
                    InjectionPoint::QueuePush => FaultAction::RejectFull,
                    InjectionPoint::WorkerStall => FaultAction::StallMs(1),
                    InjectionPoint::CacheEvict => FaultAction::EvictAll,
                },
            })
            .collect(),
    }
}

fn start_server(fault_plan: Option<FaultPlan>) -> ServerHandle {
    localwm_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 64,
        cache_cap: 16,
        default_timeout_ms: None,
        metrics_out: None,
        fault_plan,
        session_idle_ms: None,
        store_dir: None,
        pipeline_window: localwm_serve::server::DEFAULT_PIPELINE_WINDOW,
    })
    .expect("bind loopback")
}

/// Mean warm-cache timing latency (ns/request) over all designs.
fn warm_timing_ns(fault_plan: Option<FaultPlan>, designs: &[String]) -> f64 {
    let handle = start_server(fault_plan);
    let mut client = Client::connect_within(&handle.addr().to_string(), Duration::from_secs(5))
        .expect("connect");
    let reqs: Vec<Request> = designs
        .iter()
        .map(|d| {
            let mut r = Request::new(RequestKind::Timing);
            r.design = Some(d.clone());
            r
        })
        .collect();
    // Warm the cache, then measure.
    for r in &reqs {
        assert!(client.call(r).expect("warmup").ok);
    }
    let start = Instant::now();
    for _ in 0..ROUNDS {
        for r in &reqs {
            let resp = client.call(r).expect("request");
            assert!(resp.ok, "bench request failed: {:?}", resp.error);
        }
    }
    let ns = start.elapsed().as_nanos() as f64 / (ROUNDS * reqs.len()) as f64;
    handle.shutdown();
    ns
}

/// Reads prior entries from `path`, dropping the ones this run replaces.
fn surviving_entries(path: &str, prefix: &str) -> Vec<Value> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(v) = serde_json::from_str::<Value>(&text) else {
        return Vec::new();
    };
    let Some(Value::Array(entries)) = v.field("benchmarks") else {
        return Vec::new();
    };
    entries
        .iter()
        .filter(|e| !matches!(e.field("name"), Some(Value::Str(n)) if n.starts_with(prefix)))
        .cloned()
        .collect()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_testkit.json".to_owned());
    let apps = mediabench_apps();
    let designs: Vec<String> = apps
        .iter()
        .take(6)
        .map(|app| write_cdfg(&mediabench(app, 0)))
        .collect();
    let samples = ROUNDS * designs.len();

    let mut results: Vec<(String, f64)> = Vec::new();
    let prefix = format!("testkit/fault-{}/", cfg_prefix());
    results.push((
        format!("{prefix}timing-warm/plan-none"),
        warm_timing_ns(None, &designs),
    ));
    if cfg!(feature = "fault-inject") {
        results.push((
            format!("{prefix}timing-warm/plan-armed-idle"),
            warm_timing_ns(Some(armed_idle_plan()), &designs),
        ));
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, ns)| {
            vec![
                name.clone(),
                format!("{:.1}", ns / 1e3),
                samples.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["benchmark", "mean µs/req", "n"], &rows)
    );

    let mut entries = surviving_entries(&out_path, &prefix);
    entries.extend(results.iter().map(|(name, ns)| {
        Value::Object(vec![
            ("name".to_owned(), Value::Str(name.clone())),
            (
                "mean_ns".to_owned(),
                Value::Float((ns * 10.0).round() / 10.0),
            ),
            ("samples".to_owned(), Value::Int(samples as i64)),
        ])
    }));
    entries.sort_by(|a, b| {
        let key = |v: &Value| match v.field("name") {
            Some(Value::Str(s)) => s.clone(),
            _ => String::new(),
        };
        key(a).cmp(&key(b))
    });
    let note = "fault_overhead: warm-cache timing requests over 6 mediabench \
                designs through a real loopback server; fault-off = \
                localwm-serve built without the fault-inject feature (no \
                injector can exist, the production build); fault-on/plan-none \
                = seams compiled but no injector installed (one Option check \
                per seam); fault-on/plan-armed-idle = injector installed with \
                unreachable indices, so each of the ~5 seam crossings per \
                request pays an atomic counter tick plus a hash-table probe \
                but never fires. Run the bin with and without \
                `--features fault-inject`; the report merges both. Expect all \
                three lanes within run-to-run noise: the seams are nanoseconds \
                against a ~0.5ms warm request.";
    let report = Value::Object(vec![
        ("note".to_owned(), Value::Str(note.to_owned())),
        ("benchmarks".to_owned(), Value::Array(entries)),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, format!("{json}\n")).expect("write report");
    println!("wrote {out_path}");
}
