//! Regenerates the paper's **Table II**: efficiency of local watermarking
//! applied to template matching on eight DSP designs.
//!
//! Each design runs in two configurations: *tight* (available control
//! steps = critical path) and *relaxed* (steps = 2 × critical path), with
//! the published fraction of templates enforced. Reported: the module-count
//! overhead of the watermarked covering+allocation versus the unconstrained
//! one.
//!
//! Run with `cargo run --release -p localwm-bench --bin table2`.

use localwm_bench::report::render_table;
use localwm_cdfg::designs::{table2_design, table2_designs};
use localwm_core::{module_overhead, Signature, TemplateWatermarker, TmatchWmConfig};
use localwm_timing::UnitTiming;

/// Paper's published module-count overheads: (tight %, relaxed %).
const PAPER_OH: [(f64, f64); 8] = [
    (8.2, 3.3),
    (11.1, 5.0),
    (10.0, 3.3),
    (8.7, 2.5),
    (8.7, 6.0),
    (9.0, 5.2),
    (3.0, 0.4),
    (1.0, 0.1),
];

/// Signatures averaged per cell: allocation deltas are single-module
/// quanta, so one signature gives 0-or-N% outcomes; the mean over authors
/// is the meaningful per-design overhead.
const SIGNATURES: usize = 8;

fn main() {
    println!("Table II — template-matching watermarks (ours vs. paper)\n");
    let mut rows = Vec::new();
    for (desc, &(oh_tight_paper, oh_relaxed_paper)) in table2_designs().iter().zip(PAPER_OH.iter())
    {
        let g = table2_design(desc);
        let cp = UnitTiming::new(&g).critical_path();
        assert_eq!(cp, desc.critical_path, "{}", desc.name);
        for (steps, paper_oh) in [(cp, oh_tight_paper), (2 * cp, oh_relaxed_paper)] {
            let wm = TemplateWatermarker::new(TmatchWmConfig {
                z_fraction: Some(desc.enforced_pct / 100.0),
                available_steps: steps,
                ..TmatchWmConfig::default()
            });
            let mut oh_sum = 0.0;
            let mut plain_last = 0;
            let mut marked_sum = 0.0;
            let mut ok_runs = 0usize;
            for i in 0..SIGNATURES {
                let signature = Signature::from_author(&format!("table2-author-{i}"));
                match module_overhead(&g, &wm, &signature) {
                    Ok((plain, marked, oh)) => {
                        oh_sum += oh;
                        plain_last = plain;
                        marked_sum += marked as f64;
                        ok_runs += 1;
                    }
                    Err(e) => eprintln!("warning: {} steps={steps} sig {i}: {e}", desc.name),
                }
            }
            let cell = if ok_runs == 0 {
                "n/a".to_owned()
            } else {
                format!(
                    "{:.1}% ({}->{:.1})",
                    oh_sum / ok_runs as f64,
                    plain_last,
                    marked_sum / ok_runs as f64
                )
            };
            rows.push(vec![
                desc.name.to_owned(),
                steps.to_string(),
                cp.to_string(),
                g.variable_count().to_string(),
                format!("{}%", desc.enforced_pct),
                cell,
                format!("{paper_oh}%"),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "Design",
                "Steps",
                "CP",
                "Vars (ours)",
                "% enforced",
                "Module OH (ours)",
                "Module OH (paper)",
            ],
            &rows,
        )
    );
    println!(
        "Shape checks: overheads land in the paper's single-digit-to-teens\n\
         percent range and the watermark never comes for free. The paper's\n\
         tight-to-relaxed *reduction* reproduces only partially at our\n\
         design sizes: fragmentation quanta (a new piece type needs at\n\
         least one fixed-function unit regardless of slack) dominate the\n\
         percentage once the relaxed baseline shrinks. EXPERIMENTS.md\n\
         discusses the allocation-model substitution and this residual."
    );
}
