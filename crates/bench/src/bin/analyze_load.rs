//! Service-level `analyze` load benchmark: per-request latency under
//! concurrent clients at 1 and 4 workers, plus an identical-request burst
//! that exercises single-flight coalescing.
//!
//! Appends its lanes to `BENCH_hotpath.json` (or `--out`), merging with
//! whatever the `criticality` bin already wrote there: existing entries
//! with other names are kept, same-named entries are replaced. Baselines
//! resolve by name from `BENCH_service.json` (the committed pre-flattening
//! numbers, where `analyze` sat at ~41.5 ms regardless of worker count).
//! `--quick` trims client/request counts for the CI lane.

use std::time::{Duration, Instant};

use localwm_bench::report::render_table;
use localwm_cdfg::generators::{mediabench, mediabench_apps};
use localwm_cdfg::write_cdfg;
use localwm_serve::{Client, Request, RequestKind, ServeConfig, ServerHandle};
use serde::Value;

struct Lane {
    name: String,
    mean_ns: f64,
    samples: usize,
    baseline_ns: Option<f64>,
}

fn start_server(workers: usize) -> ServerHandle {
    localwm_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_depth: 256,
        cache_cap: 16,
        default_timeout_ms: None,
        metrics_out: None,
        fault_plan: None,
        session_idle_ms: None,
        store_dir: None,
        pipeline_window: localwm_serve::server::DEFAULT_PIPELINE_WINDOW,
    })
    .expect("bind loopback")
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect_within(&handle.addr().to_string(), Duration::from_secs(5)).expect("connect")
}

fn analyze_request(design: &str) -> Request {
    let mut r = Request::new(RequestKind::Analyze);
    r.design = Some(design.to_owned());
    r.samples = Some(2_000);
    r
}

/// Mean per-request wall-clock of `clients` synchronous connections each
/// sending `per_client` analyze requests; distinct designs rotate per
/// client so requests do not coalesce.
fn throughput(designs: &[String], workers: usize, clients: usize, per_client: usize) -> f64 {
    let handle = start_server(workers);
    let addr = handle.addr().to_string();
    let mut warmup = connect(&handle);
    for d in designs {
        let mut r = analyze_request(d);
        r.samples = Some(1);
        assert!(warmup.call(&r).expect("warmup").ok);
    }
    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let designs = designs.to_vec();
            std::thread::spawn(move || {
                let mut client =
                    Client::connect_within(&addr, Duration::from_secs(5)).expect("connect");
                for i in 0..per_client {
                    let mut r = analyze_request(&designs[(c + i) % designs.len()]);
                    // A per-(client, i) seed keeps every request a distinct
                    // computation: this lane measures raw throughput, not
                    // coalescing.
                    r.seed = Some((c * per_client + i) as u64);
                    let resp = client.call(&r).expect("request");
                    assert!(resp.ok, "load request failed: {:?}", resp.error);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    handle.shutdown();
    elapsed / (clients * per_client) as f64
}

/// `clients` connections all firing the *identical* analyze request at
/// once, `rounds` times: in-flight duplicates attach to one computation.
/// Returns (mean ns/request, coalesced counter at the end).
fn identical_burst(design: &str, clients: usize, rounds: usize) -> (f64, i64) {
    let handle = start_server(2);
    let addr = handle.addr().to_string();
    let mut req = analyze_request(design);
    req.samples = Some(20_000);
    req.seed = Some(7);
    let start = Instant::now();
    for _ in 0..rounds {
        let threads: Vec<_> = (0..clients)
            .map(|_| {
                let addr = addr.clone();
                let req = req.clone();
                std::thread::spawn(move || {
                    let mut client =
                        Client::connect_within(&addr, Duration::from_secs(5)).expect("connect");
                    let resp = client.call(&req).expect("request");
                    assert!(resp.ok, "burst request failed: {:?}", resp.error);
                })
            })
            .collect();
        for t in threads {
            t.join().expect("client thread");
        }
    }
    let mean = start.elapsed().as_nanos() as f64 / (clients * rounds) as f64;
    let mut c = connect(&handle);
    let stats = c.call(&Request::new(RequestKind::Stats)).expect("stats");
    let coalesced = match stats.result_field("coalesced") {
        Some(Value::Int(n)) => *n,
        other => panic!("stats missing coalesced counter: {other:?}"),
    };
    handle.shutdown();
    (mean, coalesced)
}

/// Merges `lanes` into an existing report: entries with other names are
/// kept, same-named ones replaced, the note extended.
fn merge_report(out_path: &str, lanes: &[Lane], note: &str) {
    let mut kept: Vec<Value> = Vec::new();
    let mut notes: Vec<String> = Vec::new();
    if let Ok(text) = std::fs::read_to_string(out_path) {
        if let Ok(doc) = serde_json::from_str::<Value>(&text) {
            if let Some(Value::Str(n)) = doc.field("note") {
                notes.push(n.clone());
            }
            if let Some(Value::Array(entries)) = doc.field("benchmarks") {
                kept.extend(
                    entries
                        .iter()
                        .filter(|e| match e.field("name") {
                            Some(Value::Str(n)) => lanes.iter().all(|l| &l.name != n),
                            _ => true,
                        })
                        .cloned(),
                );
            }
        }
    }
    notes.push(note.to_owned());
    for l in lanes {
        let mut fields = vec![
            ("name".to_owned(), Value::Str(l.name.clone())),
            (
                "mean_ns".to_owned(),
                Value::Float((l.mean_ns * 10.0).round() / 10.0),
            ),
            ("samples".to_owned(), Value::Int(l.samples as i64)),
        ];
        if let Some(b) = l.baseline_ns {
            fields.push(("baseline_ns".to_owned(), Value::Float(b)));
            fields.push((
                "speedup".to_owned(),
                Value::Float((b / l.mean_ns * 100.0).round() / 100.0),
            ));
        }
        kept.push(Value::Object(fields));
    }
    let doc = Value::Object(vec![
        ("note".to_owned(), Value::Str(notes.join(" | "))),
        ("benchmarks".to_owned(), Value::Array(kept)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("render json");
    std::fs::write(out_path, json + "\n").expect("write report");
    eprintln!("wrote {out_path}");
}

fn load_baselines(path: &str) -> Vec<(String, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(doc) = serde_json::from_str::<Value>(&text) else {
        return Vec::new();
    };
    let Some(Value::Array(entries)) = doc.field("benchmarks") else {
        return Vec::new();
    };
    entries
        .iter()
        .filter_map(|e| {
            let name = match e.field("name") {
                Some(Value::Str(s)) => s.clone(),
                _ => return None,
            };
            let mean = match e.field("mean_ns") {
                Some(Value::Float(f)) => *f,
                Some(Value::Int(i)) => *i as f64,
                _ => return None,
            };
            Some((name, mean))
        })
        .collect()
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_hotpath.json".to_owned();
    let mut baseline_path = "BENCH_service.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--baseline" => baseline_path = args.next().expect("--baseline needs a path"),
            other => panic!("unknown argument {other} (expected --quick/--out/--baseline)"),
        }
    }
    let (clients, per_client, burst_rounds) = if quick { (4, 4, 3) } else { (8, 12, 8) };
    let baselines = load_baselines(&baseline_path);
    let apps = mediabench_apps();
    let designs: Vec<String> = apps
        .iter()
        .take(6)
        .map(|app| write_cdfg(&mediabench(app, 0)))
        .collect();

    let mut lanes = Vec::new();
    for workers in [1usize, 4] {
        let name = format!("serve/analyze-load/workers-{workers}");
        let mean = throughput(&designs, workers, clients, per_client);
        let baseline_ns = baselines.iter().find(|(n, _)| *n == name).map(|&(_, b)| b);
        lanes.push(Lane {
            name,
            mean_ns: mean,
            samples: clients * per_client,
            baseline_ns,
        });
    }
    let (burst_mean, coalesced) = identical_burst(&designs[0], clients, burst_rounds);
    lanes.push(Lane {
        name: "serve/analyze-load/identical-burst".to_owned(),
        mean_ns: burst_mean,
        samples: clients * burst_rounds,
        baseline_ns: None,
    });

    let rows: Vec<Vec<String>> = lanes
        .iter()
        .map(|l| {
            vec![
                l.name.clone(),
                format!("{:.1}", l.mean_ns / 1e3),
                l.baseline_ns
                    .map_or_else(|| "-".to_owned(), |b| format!("{:.1}", b / 1e3)),
                l.baseline_ns
                    .map_or_else(|| "-".to_owned(), |b| format!("{:.2}x", b / l.mean_ns)),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["benchmark", "mean µs/req", "baseline µs", "speedup"],
            &rows
        )
    );

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let note = format!(
        "analyze-load: {clients} sync clients x {per_client} analyze(samples=2000) \
         requests with distinct seeds (no coalescing) at 1/4 workers; \
         identical-burst = {clients} clients x {burst_rounds} rounds of one \
         identical analyze(samples=20000) request, {coalesced} requests \
         coalesced into in-flight leaders; baselines from {baseline_path}; \
         host had {cores} CPU core(s)"
    );
    merge_report(&out_path, &lanes, &note);
}
