//! Hot-path benchmark for the Monte-Carlo criticality kernel: serial vs
//! parallel sweeps at 500/2000/8000 nodes, with before/after deltas against
//! the committed `BENCH_engine.json` baselines.
//!
//! Writes `BENCH_hotpath.json` (or the path given with `--out`). Lane names
//! match the criterion lanes (`engine/criticality/{serial,parallel}/{n}`)
//! so baselines resolve by name. `--quick` trims rounds for the CI lane.
//!
//! The bin doubles as the parallel-regression guard: on a multi-core host
//! it exits non-zero if any parallel lane is more than 5% slower than its
//! serial twin (the inversion the persistent pool exists to fix). On a
//! single-core host the guard is skipped with a note — there `Auto`
//! resolves to one worker and takes the inline serial path by design.

use std::time::Instant;

use localwm_bench::report::render_table;
use localwm_cdfg::generators::{layered, LayeredConfig};
use localwm_engine::{DesignContext, Parallelism};
use localwm_timing::{criticality_in, KindBounds};
use serde::Value;

const SIZES: [usize; 3] = [500, 2000, 8000];
/// Matches the criterion lane in `benches/timing_analysis.rs`, so means are
/// comparable to the committed baselines.
const MC_SAMPLES: usize = 64;
/// A parallel lane may be at most 5% slower than its serial twin.
const GUARD_HEADROOM: f64 = 1.05;

struct Lane {
    name: String,
    mean_ns: f64,
    rounds: usize,
    baseline_ns: Option<f64>,
}

impl Lane {
    fn speedup(&self) -> Option<f64> {
        self.baseline_ns.map(|b| b / self.mean_ns)
    }
}

fn mean_ns<R>(rounds: usize, mut f: impl FnMut() -> R) -> f64 {
    let _ = f(); // warm-up: caches, pool start, page faults
    let start = Instant::now();
    for _ in 0..rounds {
        let _ = f();
    }
    start.elapsed().as_nanos() as f64 / rounds as f64
}

/// `name → mean_ns` from a committed `BENCH_*.json`, empty when absent.
fn load_baselines(path: &str) -> Vec<(String, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(doc) = serde_json::from_str::<Value>(&text) else {
        return Vec::new();
    };
    let Some(Value::Array(entries)) = doc.field("benchmarks") else {
        return Vec::new();
    };
    entries
        .iter()
        .filter_map(|e| {
            let name = match e.field("name") {
                Some(Value::Str(s)) => s.clone(),
                _ => return None,
            };
            let mean = match e.field("mean_ns") {
                Some(Value::Float(f)) => *f,
                Some(Value::Int(i)) => *i as f64,
                _ => return None,
            };
            Some((name, mean))
        })
        .collect()
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_hotpath.json".to_owned();
    let mut baseline_path = "BENCH_engine.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--baseline" => baseline_path = args.next().expect("--baseline needs a path"),
            other => panic!("unknown argument {other} (expected --quick/--out/--baseline)"),
        }
    }
    let rounds = if quick { 6 } else { 30 };
    let baselines = load_baselines(&baseline_path);
    let model = KindBounds::uniform(1, 3);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let mut lanes: Vec<Lane> = Vec::new();
    for &ops in &SIZES {
        let g = layered(&LayeredConfig {
            ops,
            layers: ((ops as f64).sqrt() * 1.2) as usize,
            ..Default::default()
        });
        let ctx = DesignContext::new(g);
        for (tag, par) in [
            ("serial", Parallelism::Serial),
            ("parallel", Parallelism::Auto),
        ] {
            let name = format!("engine/criticality/{tag}/{ops}");
            let mean = mean_ns(rounds, || criticality_in(&ctx, &model, MC_SAMPLES, 7, par));
            let baseline_ns = baselines.iter().find(|(n, _)| *n == name).map(|&(_, b)| b);
            lanes.push(Lane {
                name,
                mean_ns: mean,
                rounds,
                baseline_ns,
            });
        }
    }

    let rows: Vec<Vec<String>> = lanes
        .iter()
        .map(|l| {
            vec![
                l.name.clone(),
                format!("{:.3}", l.mean_ns / 1e6),
                l.baseline_ns
                    .map_or_else(|| "-".to_owned(), |b| format!("{:.3}", b / 1e6)),
                l.speedup()
                    .map_or_else(|| "-".to_owned(), |s| format!("{s:.2}x")),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["benchmark", "mean ms", "baseline ms", "speedup"], &rows)
    );

    // Parallel-regression guard.
    let mut violations = Vec::new();
    if cores > 1 {
        for &ops in &SIZES {
            let serial = lanes
                .iter()
                .find(|l| l.name == format!("engine/criticality/serial/{ops}"))
                .expect("serial lane ran");
            let parallel = lanes
                .iter()
                .find(|l| l.name == format!("engine/criticality/parallel/{ops}"))
                .expect("parallel lane ran");
            if parallel.mean_ns > serial.mean_ns * GUARD_HEADROOM {
                violations.push(format!(
                    "{}: parallel {:.3} ms vs serial {:.3} ms (> {:.0}% headroom)",
                    ops,
                    parallel.mean_ns / 1e6,
                    serial.mean_ns / 1e6,
                    (GUARD_HEADROOM - 1.0) * 100.0
                ));
            }
        }
    } else {
        eprintln!(
            "guard skipped: host has 1 CPU core, Parallelism::Auto resolves to \
             the inline serial path so serial and parallel lanes are the same code"
        );
    }

    let entries: Vec<Value> = lanes
        .iter()
        .map(|l| {
            let mut fields = vec![
                ("name".to_owned(), Value::Str(l.name.clone())),
                (
                    "mean_ns".to_owned(),
                    Value::Float((l.mean_ns * 10.0).round() / 10.0),
                ),
                ("samples".to_owned(), Value::Int(l.rounds as i64)),
            ];
            if let Some(b) = l.baseline_ns {
                fields.push(("baseline_ns".to_owned(), Value::Float(b)));
                fields.push((
                    "speedup".to_owned(),
                    Value::Float((l.speedup().expect("baseline present") * 100.0).round() / 100.0),
                ));
            }
            Value::Object(fields)
        })
        .collect();
    let note = format!(
        "criticality: Monte-Carlo criticality sweep ({MC_SAMPLES} samples/run, \
         KindBounds::uniform(1,3), seed 7) over layered graphs, {rounds} rounds \
         per lane after one warm-up; baseline_ns/speedup resolved by lane name \
         from {baseline_path}; host had {cores} CPU core(s)"
    );
    let doc = Value::Object(vec![
        ("note".to_owned(), Value::Str(note)),
        ("benchmarks".to_owned(), Value::Array(entries)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("render json");
    std::fs::write(&out_path, json + "\n").expect("write report");
    eprintln!("wrote {out_path}");

    if !violations.is_empty() {
        eprintln!("parallel-regression guard FAILED:");
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
}
