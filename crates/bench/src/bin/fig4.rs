//! Regenerates the paper's **Fig. 4** example: local watermarking of
//! template-matching solutions on the fourth-order parallel IIR filter.
//!
//! * Enumerates all node-to-module matchings of the DSP library over the
//!   filter (the `M` list of the Fig. 5 pseudocode).
//! * Embeds a three-matching watermark (the paper isolates
//!   `{(A5,A6), (A9,A7), (A8,C7)}`) and prints the enforced matchings and
//!   their PPO sets.
//! * Counts the number of ways each enforced pair can be covered — the
//!   paper counts six ways for the pair `(A5, A6)` — and the resulting
//!   `P_c ≈ Π Solutions(m_i)⁻¹`.
//!
//! Run with `cargo run --release -p localwm-bench --bin fig4`.

use localwm_bench::report::render_table;
use localwm_cdfg::designs::iir4_parallel;
use localwm_core::{Signature, TemplateWatermarker, TmatchWmConfig};
use localwm_timing::UnitTiming;
use localwm_tmatch::{count_cover_solutions, find_matches, Library};

fn main() {
    let g = iir4_parallel();
    let lib = Library::dsp_default();
    println!("Fig. 4 — template-matching watermark on the 4th-order IIR\n");

    let matches = find_matches(&g, &lib);
    println!(
        "library: {} templates; matchings found in the filter: {}",
        lib.len(),
        matches.len()
    );
    let name = |n: localwm_cdfg::NodeId| -> String {
        g.node_name(n).map_or_else(|| n.to_string(), str::to_owned)
    };
    let mut rows = Vec::new();
    for m in &matches {
        let nodes: Vec<String> = m.nodes.iter().map(|&n| name(n)).collect();
        let ways = count_cover_solutions(&g, &lib, m);
        rows.push(vec![
            lib.template(m.template).name().to_owned(),
            nodes.join(", "),
            ways.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["template", "covered nodes", "Solutions(m)"], &rows)
    );
    println!(
        "(paper counts 6 ways of covering its example pair (A5, A6); the\n\
         figure's exact wiring is not machine-readable, our reconstruction\n\
         gives the counts above — same magnitude, same role in Pc.)\n"
    );

    // Embed a three-matching watermark like the paper's example.
    let cp = UnitTiming::new(&g).critical_path();
    let wm = TemplateWatermarker::new(TmatchWmConfig {
        z: 3,
        available_steps: 2 * cp,
        ..TmatchWmConfig::default()
    });
    let signature = Signature::from_author("fig4-author");
    let emb = wm.embed(&g, &signature).expect("iir4 hosts 3 matchings");
    println!("enforced matchings for {signature}:");
    for m in &emb.forced {
        let nodes: Vec<String> = m.nodes.iter().map(|&n| name(n)).collect();
        println!(
            "  {} over ({})",
            lib.template(m.template).name(),
            nodes.join(", ")
        );
    }
    let ppos: Vec<String> = emb.ppos.iter().map(|&n| name(n)).collect();
    println!("pseudo-primary outputs: {}", ppos.join(", "));
    let ev = wm
        .detect(&emb.covering, &g, &signature)
        .expect("detection re-derives");
    assert!(ev.is_match());
    println!(
        "\ndetection: all {} matchings present; log10 Pc = {:.2} \
         (paper's small-design range: -5 to -27 across Table II)",
        ev.checks.len(),
        ev.log10_pc
    );
}
