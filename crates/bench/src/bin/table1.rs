//! Regenerates the paper's **Table I**: efficiency of local watermarking
//! applied to operation scheduling on eight MediaBench applications.
//!
//! For each application and each constrained-node fraction (2 % and 5 %):
//! embed a scheduling watermark (`K = fraction·N` temporal edges,
//! `τ = 5K`), estimate the coincidence probability `P_c`, realize the
//! edges as unit operations, and measure the execution-time overhead on the
//! paper's 4-issue VLIW machine.
//!
//! Run with `cargo run --release -p localwm-bench --bin table1`.

use localwm_bench::report::{format_pc, render_table};
use localwm_cdfg::generators::{mediabench, mediabench_apps};
use localwm_core::{SchedWmConfig, SchedulingWatermarker, Signature};
use localwm_vliw::{overhead_percent, Machine};

/// Paper's published values: (name, log10 Pc @2%, OH% @2%, log10 Pc @5%, OH% @5%).
const PAPER: [(&str, f64, f64, f64, f64); 8] = [
    ("D/A Cnv.", -26.0, 0.5, -53.0, 1.5),
    ("G721", -27.0, 0.7, -67.0, 1.7),
    ("epic", -39.0, 0.6, -91.0, 2.4),
    ("PEGWIT", -27.0, 0.2, -73.0, 1.1),
    ("PGP", -89.0, 0.1, -283.0, 0.5),
    ("GSM", -34.0, 0.3, -87.0, 1.4),
    ("JPEG.c", -65.0, 0.0, -212.0, 0.2),
    ("MPEG2.d", -58.0, 0.2, -185.0, 0.4),
];

fn run_cell(
    app: &localwm_cdfg::generators::MediabenchApp,
    fraction: f64,
    signature: &Signature,
) -> Result<(f64, f64), localwm_core::WatermarkError> {
    let g = mediabench(app, 0);
    let wm = SchedulingWatermarker::new(SchedWmConfig::with_node_fraction(fraction));
    let emb = wm.embed(&g, signature)?;
    let evidence = wm.detect(&emb.schedule, &g, signature)?;
    assert!(evidence.is_match(), "embedded mark must verify");
    let realized = SchedulingWatermarker::realize_as_unit_ops(&g, &emb.edges);
    let perf = overhead_percent(&g, &realized, &Machine::paper_default());
    Ok((evidence.log10_pc, perf.overhead_percent()))
}

fn main() {
    let signature = Signature::from_author("table1-author <ip@example.com>");
    println!("Table I — operation-scheduling watermarks (ours vs. paper)\n");
    let mut rows = Vec::new();
    for (app, paper) in mediabench_apps().iter().zip(PAPER.iter()) {
        assert_eq!(app.name, paper.0, "app order must match");
        let two = run_cell(app, 0.02, &signature);
        let five = run_cell(app, 0.05, &signature);
        let fmt = |r: &Result<(f64, f64), _>, which: usize| -> (String, String) {
            match r {
                Ok((pc, oh)) => (format_pc(*pc), format!("{oh:.1}%")),
                Err(e) => {
                    eprintln!("warning: {} @{}%: {e}", app.name, which);
                    ("n/a".into(), "n/a".into())
                }
            }
        };
        let (pc2, oh2) = fmt(&two, 2);
        let (pc5, oh5) = fmt(&five, 5);
        rows.push(vec![
            app.name.to_owned(),
            app.ops.to_string(),
            pc2,
            format_pc(paper.1),
            oh2,
            format!("{:.1}%", paper.2),
            pc5,
            format_pc(paper.3),
            oh5,
            format!("{:.1}%", paper.4),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Application",
                "N",
                "Pc 2% (ours)",
                "Pc 2% (paper)",
                "OH 2% (ours)",
                "OH 2% (paper)",
                "Pc 5% (ours)",
                "Pc 5% (paper)",
                "OH 5% (ours)",
                "OH 5% (paper)",
            ],
            &rows,
        )
    );
    println!(
        "Shape checks: Pc falls exponentially with K; larger apps give\n\
         smaller Pc at a fixed fraction; overheads stay in the low percent\n\
         range and grow with the constrained fraction. Absolute exponents\n\
         differ from the paper's (different Pc estimator and substituted\n\
         workload graphs) — see EXPERIMENTS.md."
    );
}
