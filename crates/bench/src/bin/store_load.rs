//! Durability benchmark for `localwm-store`: restart cold- vs warm-start
//! latency and JSON-lines vs `LWMB1` framed-binary codec cost.
//!
//! Three questions, all against real servers on loopback TCP:
//!
//! * What does a replica restart cost without a store (the full text-parse
//!   cold path) versus with a populated `--store-dir` (designs rehydrated
//!   from checksummed binary segments)?
//! * What does each request pay for its wire encoding — the same warm
//!   server driven over a JSON-lines connection versus a framed binary
//!   connection?
//! * What do the codecs cost in isolation — `serde_json` round-trips
//!   versus the binary value codec, over the same response objects?
//!
//! Writes `BENCH_store.json` (override with `--out PATH`; `--quick`
//! shrinks the design set and repeat counts for CI). Exits nonzero if a
//! warm start fails to beat the cold path — the whole point of the store.
//!
//! Usage: `store_load [--quick] [--out PATH]`

use std::time::{Duration, Instant};

use localwm_bench::report::render_table;
use localwm_cdfg::generators::{mediabench, mediabench_apps};
use localwm_cdfg::write_cdfg;
use localwm_serve::{Client, Request, RequestKind, ServeConfig, ServerHandle};
use localwm_store::binval::{decode_value, value_to_bytes};
use serde::Value;

struct Sample {
    name: String,
    mean_ns: f64,
    samples: usize,
}

fn start_server(store_dir: Option<&std::path::Path>) -> ServerHandle {
    localwm_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 256,
        cache_cap: 16,
        default_timeout_ms: None,
        metrics_out: None,
        fault_plan: None,
        session_idle_ms: None,
        store_dir: store_dir.map(|d| d.to_str().expect("utf8 path").to_owned()),
        pipeline_window: localwm_serve::server::DEFAULT_PIPELINE_WINDOW,
    })
    .expect("bind loopback")
}

fn timing_request(design: &str) -> Request {
    let mut r = Request::new(RequestKind::Timing);
    r.design = Some(design.to_owned());
    r
}

/// Mean per-request latency (and the raw response lines) of sending
/// `reqs` serially over `client`.
fn run_pass(client: &mut Client, reqs: &[Request]) -> (f64, Vec<String>) {
    let start = Instant::now();
    let mut lines = Vec::with_capacity(reqs.len());
    for r in reqs {
        client.send(r).expect("send");
        lines.push(client.recv_line().expect("recv"));
    }
    let mean = start.elapsed().as_nanos() as f64 / reqs.len() as f64;
    for l in &lines {
        assert!(l.contains("\"ok\":true"), "benchmark request failed: {l}");
    }
    (mean, lines)
}

fn connect(handle: &ServerHandle, binary: bool) -> Client {
    let addr = handle.addr().to_string();
    let wait = Duration::from_secs(5);
    if binary {
        Client::connect_binary_within(&addr, wait).expect("connect binary")
    } else {
        Client::connect_within(&addr, wait).expect("connect")
    }
}

/// The restart experiment: the same timing battery against (a) a fresh
/// storeless server — the full text-parse cold path — and (b) a fresh
/// server warm-starting from a store a previous life populated.
fn restart_experiment(
    designs: &[String],
    store_dir: &std::path::Path,
    out: &mut Vec<Sample>,
) -> (f64, f64, Vec<String>) {
    let reqs: Vec<Request> = designs.iter().map(|d| timing_request(d)).collect();

    // Cold path: no store, every design is parsed from text.
    let handle = start_server(None);
    let (cold, _) = run_pass(&mut connect(&handle, false), &reqs);
    handle.shutdown();

    // Life 1 populates the store (parse + write-through), then dies.
    let handle = start_server(Some(store_dir));
    let (first_life, _) = run_pass(&mut connect(&handle, false), &reqs);
    handle.shutdown();

    // Life 2 warm-starts: a fresh LRU, but every design rehydrates from
    // the checksummed segments instead of the text parser.
    let handle = start_server(Some(store_dir));
    let mut client = connect(&handle, false);
    let (warm_start, lines) = run_pass(&mut client, &reqs);
    // Same server, second pass: the in-memory warm-cache floor.
    let (warm_cache, _) = run_pass(&mut client, &reqs);
    handle.shutdown();

    for (name, mean) in [
        ("store/restart/cold-no-store", cold),
        ("store/restart/first-life-populating", first_life),
        ("store/restart/warm-start-from-store", warm_start),
        ("store/restart/warm-cache-floor", warm_cache),
    ] {
        out.push(Sample {
            name: name.to_owned(),
            mean_ns: mean,
            samples: designs.len(),
        });
    }
    (cold, warm_start, lines)
}

/// The wire-codec experiment: one warm server, the same battery repeated
/// over a JSON-lines connection and a framed binary connection.
fn transport_experiment(designs: &[String], repeats: usize, out: &mut Vec<Sample>) {
    let reqs: Vec<Request> = designs.iter().map(|d| timing_request(d)).collect();
    let handle = start_server(None);
    // Warm the context cache so the codec is what is measured.
    run_pass(&mut connect(&handle, false), &reqs);
    for (name, binary) in [
        ("store/transport/json-lines", false),
        ("store/transport/binary-frames", true),
    ] {
        let mut client = connect(&handle, binary);
        let start = Instant::now();
        for _ in 0..repeats {
            run_pass(&mut client, &reqs);
        }
        let total = repeats * reqs.len();
        out.push(Sample {
            name: name.to_owned(),
            mean_ns: start.elapsed().as_nanos() as f64 / total as f64,
            samples: total,
        });
    }
    handle.shutdown();
}

/// The codec-in-isolation experiment: encode+decode round-trips of real
/// response objects through `serde_json` text and the binary value codec.
fn codec_experiment(lines: &[String], iters: usize, out: &mut Vec<Sample>) -> (usize, usize) {
    let values: Vec<Value> = lines
        .iter()
        .map(|l| serde_json::from_str(l).expect("response lines are valid JSON"))
        .collect();
    let json_bytes: usize = lines.iter().map(String::len).sum();
    let frame_bytes: usize = values.iter().map(|v| value_to_bytes(v).len()).sum();

    let start = Instant::now();
    for _ in 0..iters {
        for v in &values {
            let text = serde_json::to_string(v).expect("encode json");
            let back: Value = serde_json::from_str(&text).expect("decode json");
            assert!(matches!(back, Value::Object(_)));
        }
    }
    let json_ns = start.elapsed().as_nanos() as f64 / (iters * values.len()) as f64;

    let start = Instant::now();
    for _ in 0..iters {
        for v in &values {
            let bytes = value_to_bytes(v);
            let back = decode_value(&bytes).expect("decode binary");
            assert!(matches!(back, Value::Object(_)));
        }
    }
    let binary_ns = start.elapsed().as_nanos() as f64 / (iters * values.len()) as f64;

    out.push(Sample {
        name: "store/codec/json-round-trip".to_owned(),
        mean_ns: json_ns,
        samples: iters * values.len(),
    });
    out.push(Sample {
        name: "store/codec/binary-round-trip".to_owned(),
        mean_ns: binary_ns,
        samples: iters * values.len(),
    });
    (json_bytes, frame_bytes)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_store.json".to_owned());

    let apps = mediabench_apps();
    let designs: Vec<String> = apps
        .iter()
        .take(if quick { 3 } else { 6 })
        .map(|app| write_cdfg(&mediabench(app, 0)))
        .collect();
    let store_dir =
        std::env::temp_dir().join(format!("localwm-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);

    let mut samples = Vec::new();
    let (cold, warm_start, lines) = restart_experiment(&designs, &store_dir, &mut samples);
    transport_experiment(&designs, if quick { 4 } else { 16 }, &mut samples);
    let (json_bytes, frame_bytes) =
        codec_experiment(&lines, if quick { 50 } else { 400 }, &mut samples);
    let _ = std::fs::remove_dir_all(&store_dir);

    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                format!("{:.1}", s.mean_ns / 1e3),
                s.samples.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["benchmark", "mean µs/req", "n"], &rows)
    );
    println!(
        "warm start is {:.2}x the cold path ({:.0} µs vs {:.0} µs); \
         binary frames carry {frame_bytes} bytes vs {json_bytes} JSON bytes",
        warm_start / cold,
        warm_start / 1e3,
        cold / 1e3,
    );

    let entries: Vec<Value> = samples
        .iter()
        .map(|s| {
            Value::Object(vec![
                ("name".to_owned(), Value::Str(s.name.clone())),
                (
                    "mean_ns".to_owned(),
                    Value::Float((s.mean_ns * 10.0).round() / 10.0),
                ),
                ("samples".to_owned(), Value::Int(s.samples as i64)),
            ])
        })
        .collect();
    let note = format!(
        "store_load: in-process localwm-serve on loopback TCP over {} mediabench \
         designs; restart = serial timing battery against a storeless server \
         (cold), a first --store-dir life (populating), a restarted life over \
         the same dir (warm start: designs rehydrate from checksummed segments \
         instead of the text parser), and a same-process second pass (warm-cache \
         floor); transport = the warm battery over JSON-lines vs LWMB1 framed \
         binary connections; codec = encode+decode round-trips of the battery's \
         response objects in isolation ({json_bytes} JSON bytes vs {frame_bytes} \
         frame bytes); host had {} CPU core(s)",
        designs.len(),
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    let doc = Value::Object(vec![
        ("note".to_owned(), Value::Str(note)),
        ("benchmarks".to_owned(), Value::Array(entries)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("render json");
    std::fs::write(&out_path, json + "\n").expect("write report");
    eprintln!("wrote {out_path}");

    if warm_start >= cold {
        eprintln!(
            "REGRESSION: warm start ({warm_start:.0} ns) did not beat the \
             cold path ({cold:.0} ns)"
        );
        std::process::exit(1);
    }
}
