//! Template-matching enumeration and covering throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use localwm_cdfg::designs::{table2_design, table2_designs};
use localwm_tmatch::{cover, find_matches, CoverConstraints, Library};

fn bench_find_matches(c: &mut Criterion) {
    let mut group = c.benchmark_group("tmatch/find-matches");
    let lib = Library::dsp_default();
    for desc in table2_designs().iter().take(7) {
        let g = table2_design(desc);
        group.bench_with_input(
            BenchmarkId::from_parameter(desc.name),
            &g.op_count(),
            |b, _| {
                b.iter(|| find_matches(&g, &lib));
            },
        );
    }
    group.finish();
}

fn bench_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("tmatch/cover");
    let lib = Library::dsp_default();
    for desc in table2_designs().iter().take(7) {
        let g = table2_design(desc);
        group.bench_with_input(
            BenchmarkId::from_parameter(desc.name),
            &g.op_count(),
            |b, _| {
                b.iter(|| cover(&g, &lib, &CoverConstraints::default()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_find_matches, bench_cover);
criterion_main!(benches);
