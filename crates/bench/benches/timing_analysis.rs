//! Timing-analysis throughput: unit timing, incremental updates, and the
//! bounded delay model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use localwm_cdfg::generators::{layered, LayeredConfig};
use localwm_engine::{DesignContext, Parallelism};
use localwm_timing::{bounded_arrival, criticality_in, DynamicBounds, KindBounds, UnitTiming};

fn graphs() -> Vec<(usize, localwm_cdfg::Cdfg)> {
    [500usize, 2000, 8000]
        .iter()
        .map(|&ops| {
            (
                ops,
                layered(&LayeredConfig {
                    ops,
                    layers: ((ops as f64).sqrt() * 1.2) as usize,
                    ..Default::default()
                }),
            )
        })
        .collect()
}

fn bench_unit_timing(c: &mut Criterion) {
    let mut group = c.benchmark_group("timing/unit");
    for (ops, g) in graphs() {
        group.bench_with_input(BenchmarkId::from_parameter(ops), &ops, |b, _| {
            b.iter(|| UnitTiming::new(&g));
        });
    }
    group.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("timing/incremental-edge");
    for (ops, g) in graphs() {
        let t0 = UnitTiming::new(&g);
        // A slack pair to tie together.
        let nodes: Vec<_> = g
            .node_ids()
            .filter(|&n| g.kind(n).is_schedulable())
            .collect();
        let (a, b2) = (nodes[ops / 3], nodes[2 * ops / 3]);
        if g.reaches(a, b2) || g.reaches(b2, a) {
            continue;
        }
        let mut gm = g.clone();
        gm.add_temporal_edge(a, b2).expect("incomparable");
        group.bench_with_input(BenchmarkId::from_parameter(ops), &ops, |bch, _| {
            bch.iter(|| {
                let mut t = t0.clone();
                t.add_edge_update(&gm, a, b2);
                t
            });
        });
    }
    group.finish();
}

fn bench_bounded(c: &mut Criterion) {
    let mut group = c.benchmark_group("timing/bounded-delay");
    let model = DynamicBounds::new(KindBounds::uniform(1, 3), 1);
    for (ops, g) in graphs() {
        group.bench_with_input(BenchmarkId::from_parameter(ops), &ops, |b, _| {
            b.iter(|| bounded_arrival(&g, &model));
        });
    }
    group.finish();
}

/// Cached (shared `DesignContext`) versus uncached (fresh analysis per
/// query) access to the same derived facts: a window table at the critical
/// path plus laxity for every node, queried repeatedly.
fn bench_cached_vs_uncached(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/context-queries");
    for (ops, g) in graphs() {
        let nodes: Vec<_> = g.node_ids().collect();
        group.bench_with_input(BenchmarkId::new("uncached", ops), &ops, |b, _| {
            b.iter(|| {
                let t = UnitTiming::new(&g);
                let cp = t.critical_path();
                nodes
                    .iter()
                    .map(|&n| u64::from(t.laxity(n)) + u64::from(t.alap(n, cp)))
                    .sum::<u64>()
            });
        });
        let ctx = DesignContext::new(g.clone());
        group.bench_with_input(BenchmarkId::new("cached", ops), &ops, |b, _| {
            b.iter(|| {
                let cp = ctx.critical_path();
                let w = ctx.windows(cp).expect("critical path is feasible");
                nodes
                    .iter()
                    .map(|&n| u64::from(ctx.laxity(n)) + u64::from(w.alap(n)))
                    .sum::<u64>()
            });
        });
    }
    group.finish();
}

/// Serial versus parallel Monte-Carlo criticality over the shared context.
fn bench_serial_vs_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/criticality");
    let model = KindBounds::uniform(1, 3);
    const SAMPLES: usize = 64;
    for (ops, g) in graphs() {
        let ctx = DesignContext::new(g);
        group.bench_with_input(BenchmarkId::new("serial", ops), &ops, |b, _| {
            b.iter(|| criticality_in(&ctx, &model, SAMPLES, 7, Parallelism::Serial));
        });
        group.bench_with_input(BenchmarkId::new("parallel", ops), &ops, |b, _| {
            b.iter(|| criticality_in(&ctx, &model, SAMPLES, 7, Parallelism::Auto));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_unit_timing,
    bench_incremental,
    bench_bounded,
    bench_cached_vs_uncached,
    bench_serial_vs_parallel
);
criterion_main!(benches);
