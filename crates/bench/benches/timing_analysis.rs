//! Timing-analysis throughput: unit timing, incremental updates, and the
//! bounded delay model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use localwm_cdfg::generators::{layered, LayeredConfig};
use localwm_timing::{bounded_arrival, DynamicBounds, KindBounds, UnitTiming};

fn graphs() -> Vec<(usize, localwm_cdfg::Cdfg)> {
    [500usize, 2000, 8000]
        .iter()
        .map(|&ops| {
            (
                ops,
                layered(&LayeredConfig {
                    ops,
                    layers: ((ops as f64).sqrt() * 1.2) as usize,
                    ..Default::default()
                }),
            )
        })
        .collect()
}

fn bench_unit_timing(c: &mut Criterion) {
    let mut group = c.benchmark_group("timing/unit");
    for (ops, g) in graphs() {
        group.bench_with_input(BenchmarkId::from_parameter(ops), &ops, |b, _| {
            b.iter(|| UnitTiming::new(&g));
        });
    }
    group.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("timing/incremental-edge");
    for (ops, g) in graphs() {
        let t0 = UnitTiming::new(&g);
        // A slack pair to tie together.
        let nodes: Vec<_> = g
            .node_ids()
            .filter(|&n| g.kind(n).is_schedulable())
            .collect();
        let (a, b2) = (nodes[ops / 3], nodes[2 * ops / 3]);
        if g.reaches(a, b2) || g.reaches(b2, a) {
            continue;
        }
        let mut gm = g.clone();
        gm.add_temporal_edge(a, b2).expect("incomparable");
        group.bench_with_input(BenchmarkId::from_parameter(ops), &ops, |bch, _| {
            bch.iter(|| {
                let mut t = t0.clone();
                t.add_edge_update(&gm, a, b2);
                t
            });
        });
    }
    group.finish();
}

fn bench_bounded(c: &mut Criterion) {
    let mut group = c.benchmark_group("timing/bounded-delay");
    let model = DynamicBounds::new(KindBounds::uniform(1, 3), 1);
    for (ops, g) in graphs() {
        group.bench_with_input(BenchmarkId::from_parameter(ops), &ops, |b, _| {
            b.iter(|| bounded_arrival(&g, &model));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_unit_timing, bench_incremental, bench_bounded);
criterion_main!(benches);
