//! Scheduler throughput: list vs. force-directed vs. ALAP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use localwm_cdfg::designs::{table2_design, table2_designs};
use localwm_cdfg::generators::{layered, LayeredConfig};
use localwm_sched::{alap_schedule, force_directed_schedule, list_schedule, OpClass, ResourceSet};
use localwm_timing::UnitTiming;

fn bench_list(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched/list");
    for &ops in &[500usize, 2000] {
        let g = layered(&LayeredConfig {
            ops,
            layers: ((ops as f64).sqrt() * 1.2) as usize,
            ..Default::default()
        });
        let rs = ResourceSet::unlimited()
            .with(OpClass::Alu, 4)
            .with(OpClass::Multiplier, 4)
            .with(OpClass::Memory, 2)
            .with(OpClass::Branch, 2);
        group.bench_with_input(BenchmarkId::from_parameter(ops), &ops, |b, _| {
            b.iter(|| list_schedule(&g, &rs, None).expect("schedules"));
        });
    }
    group.finish();
}

fn bench_fds(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched/force-directed");
    group.sample_size(10);
    for desc in table2_designs().iter().take(4) {
        let g = table2_design(desc);
        let cp = UnitTiming::new(&g).critical_path();
        group.bench_with_input(BenchmarkId::from_parameter(desc.name), &cp, |b, &cp| {
            b.iter(|| force_directed_schedule(&g, 2 * cp).expect("schedules"));
        });
    }
    group.finish();
}

fn bench_alap(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched/alap");
    let desc = table2_designs()[7]; // echo canceler
    let g = table2_design(&desc);
    let cp = UnitTiming::new(&g).critical_path();
    group.sample_size(10);
    group.bench_function("echo-canceler", |b| {
        b.iter(|| alap_schedule(&g, 2 * cp).expect("schedules"));
    });
    group.finish();
}

criterion_group!(benches, bench_list, bench_fds, bench_alap);
criterion_main!(benches);
