//! Embedding and detection throughput versus design size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use localwm_cdfg::generators::{layered, LayeredConfig};
use localwm_core::{SchedWmConfig, SchedulingWatermarker, Signature};

fn bench_embed(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched-wm/embed");
    group.sample_size(10);
    for &ops in &[200usize, 800, 3200] {
        let g = layered(&LayeredConfig {
            ops,
            layers: ((ops as f64).sqrt() * 1.2) as usize,
            ..Default::default()
        });
        let wm = SchedulingWatermarker::new(SchedWmConfig::with_node_fraction(0.02));
        let sig = Signature::from_author("bench");
        group.bench_with_input(BenchmarkId::from_parameter(ops), &ops, |b, _| {
            b.iter(|| wm.embed(&g, &sig).expect("embeds"));
        });
    }
    group.finish();
}

fn bench_detect(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched-wm/detect");
    group.sample_size(10);
    for &ops in &[200usize, 800, 3200] {
        let g = layered(&LayeredConfig {
            ops,
            layers: ((ops as f64).sqrt() * 1.2) as usize,
            ..Default::default()
        });
        let wm = SchedulingWatermarker::new(SchedWmConfig::with_node_fraction(0.02));
        let sig = Signature::from_author("bench");
        let emb = wm.embed(&g, &sig).expect("embeds");
        group.bench_with_input(BenchmarkId::from_parameter(ops), &ops, |b, _| {
            b.iter(|| wm.detect(&emb.schedule, &g, &sig).expect("detects"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_embed, bench_detect);
criterion_main!(benches);
