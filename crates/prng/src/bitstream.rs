//! Selection draws on top of the RC4 keystream.

use crate::{Rc4, Signature};

/// An author-specific pseudorandom bitstream with unbiased selection draws.
///
/// Both the embedding and the detection side construct the same bitstream
/// from the signature and a purpose label, then perform the *same sequence
/// of draws*; determinism plus unbiased `range` draws guarantee the two
/// sides reconstruct identical selections.
///
/// ```
/// use localwm_prng::{Bitstream, Signature};
/// let sig = Signature::from_author("alice");
/// let mut bs = Bitstream::for_purpose(&sig, "example");
/// let idx = bs.range(5);
/// assert!(idx < 5);
/// let chosen = bs.choose(&["a", "b", "c"]);
/// assert!(chosen.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Bitstream {
    rc4: Rc4,
    /// Bit buffer (LSB-first) for single-bit draws.
    buf: u8,
    bits_left: u8,
}

impl Bitstream {
    /// Creates a bitstream keyed by a signature alone.
    pub fn new(signature: &Signature) -> Self {
        Bitstream {
            rc4: Rc4::new(signature.key()),
            buf: 0,
            bits_left: 0,
        }
    }

    /// Creates a bitstream keyed by a signature and a purpose label, so
    /// different protocol stages draw from independent streams.
    pub fn for_purpose(signature: &Signature, purpose: &str) -> Self {
        let mut key = Vec::with_capacity(64 + purpose.len() + 1);
        key.extend_from_slice(signature.key());
        key.push(0x1F); // separator outside ASCII text range
        key.extend_from_slice(purpose.as_bytes());
        // RC4 keys cap at 256 bytes; fold overlong purposes.
        if key.len() > 256 {
            let folded: Vec<u8> = key.chunks(256).fold(vec![0u8; 256], |mut acc, chunk| {
                for (a, &c) in acc.iter_mut().zip(chunk) {
                    *a ^= c;
                }
                acc
            });
            key = folded;
        }
        Bitstream {
            rc4: Rc4::new(&key),
            buf: 0,
            bits_left: 0,
        }
    }

    /// Draws one pseudorandom bit.
    pub fn bit(&mut self) -> bool {
        if self.bits_left == 0 {
            self.buf = self.rc4.next_byte();
            self.bits_left = 8;
        }
        let b = self.buf & 1 != 0;
        self.buf >>= 1;
        self.bits_left -= 1;
        b
    }

    /// Draws a full byte.
    pub fn byte(&mut self) -> u8 {
        self.rc4.next_byte()
    }

    /// Draws a `u32`.
    pub fn u32(&mut self) -> u32 {
        u32::from_be_bytes([self.byte(), self.byte(), self.byte(), self.byte()])
    }

    /// Draws an unbiased index in `0..n` via rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn range(&mut self, n: usize) -> usize {
        assert!(n > 0, "range(0) has no valid draws");
        let n = n as u64;
        if n == 1 {
            return 0;
        }
        // Rejection sampling over the smallest power-of-two cover.
        let bits = 64 - (n - 1).leading_zeros();
        loop {
            let mut v: u64 = 0;
            for _ in 0..bits.div_ceil(8) {
                v = (v << 8) | u64::from(self.byte());
            }
            v &= (1u64 << bits) - 1;
            if v < n {
                return v as usize;
            }
        }
    }

    /// Draws a bool that is `true` with probability `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or `num > den`.
    pub fn ratio(&mut self, num: u32, den: u32) -> bool {
        assert!(den > 0 && num <= den, "invalid probability {num}/{den}");
        (self.range(den as usize) as u32) < num
    }

    /// Chooses one element of a slice uniformly (`None` for an empty slice).
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.range(items.len())])
        }
    }

    /// Draws an ordered selection of `k` distinct indices from `0..n`
    /// (a pseudorandomly *ordered* selection, as the protocol requires for
    /// the `T''` node list).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn ordered_selection(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot select {k} of {n}");
        // Partial Fisher–Yates over an index vector.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.range(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> Signature {
        Signature::from_author("test-author")
    }

    #[test]
    fn purposes_give_independent_streams() {
        let s = sig();
        let mut a = Bitstream::for_purpose(&s, "a");
        let mut b = Bitstream::for_purpose(&s, "b");
        let xs: Vec<u8> = (0..16).map(|_| a.byte()).collect();
        let ys: Vec<u8> = (0..16).map(|_| b.byte()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn same_purpose_replays_identically() {
        let s = sig();
        let mut a = Bitstream::for_purpose(&s, "x");
        let mut b = Bitstream::for_purpose(&s, "x");
        for n in [1usize, 2, 3, 10, 1000] {
            assert_eq!(a.range(n), b.range(n));
        }
        for _ in 0..100 {
            assert_eq!(a.bit(), b.bit());
        }
    }

    #[test]
    fn range_draws_are_in_bounds_and_cover() {
        let mut bs = Bitstream::new(&sig());
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = bs.range(7);
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut bs = Bitstream::new(&sig());
        let n = 5usize;
        let mut counts = vec![0u32; n];
        const DRAWS: u32 = 50_000;
        for _ in 0..DRAWS {
            counts[bs.range(n)] += 1;
        }
        let expected = f64::from(DRAWS) / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expected).abs() / expected;
            assert!(dev < 0.05, "bucket {i} deviates {dev}");
        }
    }

    #[test]
    fn ordered_selection_is_a_permutation_prefix() {
        let mut bs = Bitstream::new(&sig());
        let sel = bs.ordered_selection(20, 8);
        assert_eq!(sel.len(), 8);
        let mut sorted = sel.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "selection must be distinct");
        assert!(sel.iter().all(|&i| i < 20));
    }

    #[test]
    fn ordered_selection_full_is_permutation() {
        let mut bs = Bitstream::new(&sig());
        let mut sel = bs.ordered_selection(10, 10);
        sel.sort_unstable();
        assert_eq!(sel, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "range(0)")]
    fn range_zero_panics() {
        Bitstream::new(&sig()).range(0);
    }

    #[test]
    fn ratio_respects_probability() {
        let mut bs = Bitstream::new(&sig());
        let mut hits = 0u32;
        const DRAWS: u32 = 20_000;
        for _ in 0..DRAWS {
            if bs.ratio(1, 4) {
                hits += 1;
            }
        }
        let p = f64::from(hits) / f64::from(DRAWS);
        assert!((0.23..0.27).contains(&p), "p = {p}");
    }

    #[test]
    fn choose_on_empty_is_none() {
        let mut bs = Bitstream::new(&sig());
        assert_eq!(bs.choose::<u8>(&[]), None);
    }

    #[test]
    fn overlong_purpose_is_folded_not_rejected() {
        let long = "p".repeat(1000);
        let mut bs = Bitstream::for_purpose(&sig(), &long);
        let _ = bs.byte();
    }
}
