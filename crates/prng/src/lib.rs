//! Author-keyed pseudorandom bitstreams.
//!
//! Every selection the watermarking protocol makes — which subtree to mark,
//! which nodes receive constraints, which matching to enforce — is driven by
//! "an author-specific pseudorandom sequence of bits … generated using the
//! RC4 stream cipher by iteratively encrypting a certain standard seed
//! number keyed with the author's digital signature" (paper §IV-A).
//!
//! * [`Rc4`] — the RC4 stream cipher, implemented from scratch.
//! * [`Signature`] — an author identity hashed into an RC4 key.
//! * [`Bitstream`] — convenience draws (`bit`, `range`, `choose`, `subset`)
//!   on top of the keystream, with rejection sampling so range draws are
//!   unbiased and therefore identical on the embedding and detection sides.
//!
//! # Example
//!
//! ```
//! use localwm_prng::{Bitstream, Signature};
//!
//! let sig = Signature::from_author("alice <alice@example.com>");
//! let mut embed_side = Bitstream::for_purpose(&sig, "domain-selection");
//! let mut detect_side = Bitstream::for_purpose(&sig, "domain-selection");
//! // Both sides derive the identical selection sequence.
//! for _ in 0..64 {
//!     assert_eq!(embed_side.range(10), detect_side.range(10));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitstream;
mod rc4;
mod signature;
mod splitmix;

pub use bitstream::Bitstream;
pub use rc4::Rc4;
pub use signature::Signature;
pub use splitmix::SplitMix64;
