//! SplitMix64: the toolkit's canonical deterministic stream.
//!
//! Every adversarial and infrastructure path that needs cheap seeded
//! randomness — attack transformations, fault plans, seeded request
//! streams, shard placement — draws from this one generator, so "same seed
//! ⇒ same bytes" holds across crates and across platforms. The keyed
//! [`Bitstream`](crate::Bitstream) remains the *watermarking* stream (it is
//! part of the protocol); SplitMix64 is for everything that merely needs
//! reproducibility.
//!
//! The generator is Steele, Lea & Flood's `splitmix64`: a 64-bit counter
//! advanced by the golden-ratio increment, finalized by two
//! multiply-xorshift rounds. It is not cryptographic and does not need to
//! be — determinism and stream separation are the contract.

/// The golden-ratio increment of the splitmix64 counter.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// A splittable counter-based PRNG (splitmix64): identical sequences for
/// identical seeds on every platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// The stateless splitmix64 finalizer: two multiply-xorshift rounds.
    ///
    /// This is the exact mix the toolkit's pure hash sites use (shard
    /// placement, per-sample Monte-Carlo seeds, per-cell attack seeds):
    /// a well-separated 64-bit value for any input, no state involved.
    pub fn mix(z: u64) -> u64 {
        let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(GOLDEN);
        Self::mix(self.0)
    }

    /// An unbiased-enough draw in `[0, bound)` (`bound` clamped to ≥ 1).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// A draw in the inclusive range `[lo, hi]` (empty ranges yield `lo`).
    pub fn in_range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        if hi <= lo {
            return lo;
        }
        lo + u32::try_from(self.below(u64::from(hi - lo) + 1)).expect("span fits in u32")
    }

    /// A derived generator for sub-stream `stream`: deterministic, and
    /// well-separated from both `self`'s future draws and other streams.
    /// The parent is not advanced.
    pub fn derive(&self, stream: u64) -> SplitMix64 {
        SplitMix64::new(Self::mix(self.0 ^ stream.wrapping_mul(GOLDEN)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SplitMix64::new(5);
        let mut b = SplitMix64::new(5);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn reference_vector() {
        // splitmix64(seed = 0): the published reference outputs.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn below_stays_in_bounds_and_tolerates_zero() {
        let mut r = SplitMix64::new(9);
        for _ in 0..256 {
            assert!(r.below(10) < 10);
        }
        assert_eq!(r.below(0), 0, "zero bound clamps to 1");
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn in_range_is_inclusive_and_handles_degenerate_spans() {
        let mut r = SplitMix64::new(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..512 {
            let v = r.in_range_u32(4, 6);
            assert!((4..=6).contains(&v));
            seen_lo |= v == 4;
            seen_hi |= v == 6;
        }
        assert!(seen_lo && seen_hi, "range draws reach both endpoints");
        assert_eq!(r.in_range_u32(7, 7), 7);
        assert_eq!(r.in_range_u32(9, 2), 9, "inverted span yields lo");
    }

    #[test]
    fn derived_streams_are_deterministic_and_separated() {
        let parent = SplitMix64::new(42);
        let mut a1 = parent.derive(1);
        let mut a2 = parent.derive(1);
        let mut b = parent.derive(2);
        let xs: Vec<u64> = (0..16).map(|_| a1.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| a2.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        // Deriving does not advance the parent.
        assert_eq!(parent.clone().next_u64(), parent.clone().next_u64());
    }

    #[test]
    fn mix_matches_the_generator_step() {
        let mut r = SplitMix64::new(100);
        assert_eq!(r.next_u64(), SplitMix64::mix(100u64.wrapping_add(GOLDEN)));
    }
}
