//! Author signatures.

use std::fmt;

/// An author's digital signature, reduced to an RC4 key.
///
/// The paper keys the bitstream generator "with the author's digital
/// signature D". Any byte string works as a signature; convenience
/// constructors derive one from an author identity string. A 64-byte key is
/// derived with a simple sponge over the input so that signatures longer
/// than RC4's key-schedule limit still work and short signatures get
/// diffused.
///
/// ```
/// use localwm_prng::Signature;
/// let a = Signature::from_author("alice");
/// let b = Signature::from_author("bob");
/// assert_ne!(a.key(), b.key());
/// assert_eq!(a, Signature::from_author("alice"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    key: [u8; 64],
    label: String,
}

impl Signature {
    /// Derives a signature from an author identity string.
    pub fn from_author(author: &str) -> Self {
        Self::from_bytes(author.as_bytes(), author)
    }

    /// Derives a signature from raw signature bytes with a display label.
    pub fn from_bytes(bytes: &[u8], label: &str) -> Self {
        Signature {
            key: derive_key(bytes),
            label: label.to_owned(),
        }
    }

    /// The derived 64-byte RC4 key.
    pub fn key(&self) -> &[u8; 64] {
        &self.key
    }

    /// The human-readable label (for reports; carries no entropy).
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "signature({})", self.label)
    }
}

/// A fixed-key sponge: absorb input into a 64-byte state with an FNV-like
/// mixing permutation. Not a cryptographic hash — the one-way property the
/// protocol relies on comes from RC4 keyed with this state; the sponge only
/// spreads input entropy across the key bytes.
fn derive_key(bytes: &[u8]) -> [u8; 64] {
    let mut state = [0u8; 64];
    // Domain-separating initial pattern.
    for (i, s) in state.iter_mut().enumerate() {
        *s = (i as u8).wrapping_mul(0x9E).wrapping_add(0x3C);
    }
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for (i, &b) in bytes.iter().enumerate() {
        acc ^= u64::from(b);
        acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
        let idx = i % 64;
        state[idx] ^= (acc >> 24) as u8;
        state[(idx + 17) % 64] = state[(idx + 17) % 64].wrapping_add((acc >> 48) as u8);
    }
    // Final diffusion passes so trailing bytes influence every key byte.
    for _ in 0..3 {
        for i in 0..64 {
            acc ^= u64::from(state[i]);
            acc = acc.wrapping_mul(0x0000_0100_0000_01B3).rotate_left(29);
            state[i] =
                state[i].wrapping_add((acc >> 32) as u8).rotate_left(3) ^ state[(i + 31) % 64];
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(
            Signature::from_author("x").key(),
            Signature::from_author("x").key()
        );
    }

    #[test]
    fn single_bit_difference_changes_many_key_bytes() {
        let a = Signature::from_bytes(b"watermark-0", "a");
        let b = Signature::from_bytes(b"watermark-1", "b");
        let differing = a
            .key()
            .iter()
            .zip(b.key().iter())
            .filter(|(x, y)| x != y)
            .count();
        assert!(differing > 32, "only {differing} key bytes differ");
    }

    #[test]
    fn empty_and_long_inputs_work() {
        let empty = Signature::from_bytes(b"", "empty");
        let long = Signature::from_bytes(&[0xAB; 10_000], "long");
        assert_ne!(empty.key(), long.key());
    }

    #[test]
    fn display_shows_label_not_key() {
        let s = Signature::from_author("alice");
        assert_eq!(s.to_string(), "signature(alice)");
    }
}
