//! The RC4 stream cipher.

/// RC4 keystream generator.
///
/// Implemented exactly as published (KSA + PRGA). The paper leans on RC4's
/// one-way property: "the one-way property of the pseudorandom bitstream
/// generator prohibits the attacker to locally modify the design in order to
/// augment her/his signature" (§IV-A).
///
/// RC4 is used here as a *deterministic keyed PRG*, not as a secure cipher
/// for new cryptographic designs — it is what the paper specifies, and the
/// protocol only needs a one-way keyed bitstream.
///
/// ```
/// use localwm_prng::Rc4;
/// let mut rc4 = Rc4::new(b"Key");
/// let mut buf = [0u8; 5];
/// rc4.keystream(&mut buf);
/// // Published test vector for key "Key": keystream EB9F7781B734CA72A719
/// assert_eq!(buf, [0xEB, 0x9F, 0x77, 0x81, 0xB7]);
/// ```
#[derive(Debug, Clone)]
pub struct Rc4 {
    s: [u8; 256],
    i: u8,
    j: u8,
}

impl Rc4 {
    /// Initializes the cipher with a key (KSA).
    ///
    /// # Panics
    ///
    /// Panics if the key is empty or longer than 256 bytes (the RC4 key
    /// schedule's defined range).
    pub fn new(key: &[u8]) -> Self {
        assert!(
            !key.is_empty() && key.len() <= 256,
            "RC4 key length must be within 1..=256 bytes"
        );
        let mut s = [0u8; 256];
        for (i, slot) in s.iter_mut().enumerate() {
            *slot = i as u8;
        }
        let mut j = 0u8;
        for i in 0..256 {
            j = j.wrapping_add(s[i]).wrapping_add(key[i % key.len()]);
            s.swap(i, j as usize);
        }
        Rc4 { s, i: 0, j: 0 }
    }

    /// Produces the next keystream byte (PRGA).
    pub fn next_byte(&mut self) -> u8 {
        self.i = self.i.wrapping_add(1);
        self.j = self.j.wrapping_add(self.s[self.i as usize]);
        self.s.swap(self.i as usize, self.j as usize);
        let t = self.s[self.i as usize].wrapping_add(self.s[self.j as usize]);
        self.s[t as usize]
    }

    /// Fills a buffer with keystream bytes.
    pub fn keystream(&mut self, buf: &mut [u8]) {
        for b in buf {
            *b = self.next_byte();
        }
    }

    /// Encrypts/decrypts in place (XOR with the keystream).
    pub fn apply(&mut self, data: &mut [u8]) {
        for b in data {
            *b ^= self.next_byte();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published RC4 test vectors (key, first keystream bytes).
    const VECTORS: &[(&[u8], &[u8])] = &[
        (
            b"Key",
            &[0xEB, 0x9F, 0x77, 0x81, 0xB7, 0x34, 0xCA, 0x72, 0xA7, 0x19],
        ),
        (b"Wiki", &[0x60, 0x44, 0xDB, 0x6D, 0x41, 0xB7]),
        (b"Secret", &[0x04, 0xD4, 0x6B, 0x05, 0x3C, 0xA8, 0x7B, 0x59]),
    ];

    #[test]
    fn matches_published_test_vectors() {
        for (key, expected) in VECTORS {
            let mut rc4 = Rc4::new(key);
            let mut buf = vec![0u8; expected.len()];
            rc4.keystream(&mut buf);
            assert_eq!(&buf, expected, "key {:?}", std::str::from_utf8(key));
        }
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let mut plain = b"attack at dawn".to_vec();
        let original = plain.clone();
        Rc4::new(b"k3y").apply(&mut plain);
        assert_ne!(plain, original);
        Rc4::new(b"k3y").apply(&mut plain);
        assert_eq!(plain, original);
    }

    #[test]
    fn different_keys_differ() {
        let mut a = Rc4::new(b"a");
        let mut b = Rc4::new(b"b");
        let bytes_a: Vec<u8> = (0..32).map(|_| a.next_byte()).collect();
        let bytes_b: Vec<u8> = (0..32).map(|_| b.next_byte()).collect();
        assert_ne!(bytes_a, bytes_b);
    }

    #[test]
    #[should_panic(expected = "RC4 key length")]
    fn empty_key_panics() {
        let _ = Rc4::new(b"");
    }

    #[test]
    fn keystream_is_reasonably_balanced() {
        let mut rc4 = Rc4::new(b"balance-check");
        let mut ones = 0u32;
        const N: u32 = 8 * 4096;
        for _ in 0..(N / 8) {
            ones += rc4.next_byte().count_ones();
        }
        let ratio = f64::from(ones) / f64::from(N);
        assert!((0.47..0.53).contains(&ratio), "bit ratio {ratio}");
    }
}
