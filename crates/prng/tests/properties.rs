//! Property-based tests for the keyed bitstream.

use localwm_prng::{Bitstream, Rc4, Signature};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RC4 encryption is an involution under the same key.
    #[test]
    fn rc4_involution(key in proptest::collection::vec(any::<u8>(), 1..64),
                      data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut buf = data.clone();
        Rc4::new(&key).apply(&mut buf);
        Rc4::new(&key).apply(&mut buf);
        prop_assert_eq!(buf, data);
    }

    /// Range draws are always in bounds for arbitrary n.
    #[test]
    fn range_in_bounds(author in "[a-z]{1,16}", n in 1usize..10_000) {
        let sig = Signature::from_author(&author);
        let mut bs = Bitstream::new(&sig);
        for _ in 0..16 {
            prop_assert!(bs.range(n) < n);
        }
    }

    /// Ordered selections are distinct, in-range permutation prefixes.
    #[test]
    fn ordered_selection_valid(author in "[a-z]{1,12}", n in 1usize..200, frac in 0.0f64..1.0) {
        let k = ((n as f64 * frac) as usize).min(n);
        let sig = Signature::from_author(&author);
        let mut bs = Bitstream::for_purpose(&sig, "prop");
        let sel = bs.ordered_selection(n, k);
        prop_assert_eq!(sel.len(), k);
        let mut sorted = sel.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k);
        prop_assert!(sel.iter().all(|&i| i < n));
    }

    /// Identical (signature, purpose) pairs replay identically; different
    /// purposes diverge quickly.
    #[test]
    fn purpose_separation(author in "[a-z]{1,12}") {
        let sig = Signature::from_author(&author);
        let mut a1 = Bitstream::for_purpose(&sig, "alpha");
        let mut a2 = Bitstream::for_purpose(&sig, "alpha");
        let mut b = Bitstream::for_purpose(&sig, "beta");
        let xs: Vec<u8> = (0..32).map(|_| a1.byte()).collect();
        let ys: Vec<u8> = (0..32).map(|_| a2.byte()).collect();
        let zs: Vec<u8> = (0..32).map(|_| b.byte()).collect();
        prop_assert_eq!(&xs, &ys);
        prop_assert_ne!(&xs, &zs);
    }

    /// Signature derivation is injective in practice: distinct authors
    /// give distinct keys.
    #[test]
    fn signatures_distinct(a in "[a-z]{1,16}", b in "[a-z]{1,16}") {
        prop_assume!(a != b);
        let sa = Signature::from_author(&a);
        let sb = Signature::from_author(&b);
        prop_assert_ne!(sa.key(), sb.key());
    }
}
