//! Property-based tests for the attack suite: validity at any budget and
//! seed, budget-0 identity, and seeded determinism of traces and reports.

use localwm_attack::{apply, strength_report_in, AttackConfig, AttackKind, StrengthConfig};
use localwm_cdfg::generators::{layered, LayeredConfig};
use localwm_cdfg::{write_cdfg, Cdfg, EdgeKind, NodeId};
use localwm_core::attack::reschedule_with;
use localwm_core::SchedWmConfig;
use localwm_engine::{DesignContext, Parallelism};
use localwm_prng::{Signature, SplitMix64};
use localwm_sched::Schedule;
use proptest::prelude::*;

/// A random layered design with a valid randomized schedule and a handful
/// of schedule-compatible temporal edges (so constraint stripping has prey).
fn design(ops: usize, gseed: u64) -> (Cdfg, Schedule, u32) {
    let mut g = layered(&LayeredConfig {
        ops,
        layers: 6,
        seed: gseed,
        ..LayeredConfig::default()
    });
    let s = reschedule_with(&DesignContext::from(&g), &mut SplitMix64::new(gseed ^ 0xA5)).unwrap();
    let nodes: Vec<NodeId> = g
        .node_ids()
        .filter(|&n| g.kind(n).is_schedulable())
        .collect();
    let mut rng = SplitMix64::new(gseed.wrapping_mul(31) ^ 7);
    for _ in 0..ops / 8 {
        let a = nodes[rng.below(nodes.len() as u64) as usize];
        let b = nodes[rng.below(nodes.len() as u64) as usize];
        if s.step(a).unwrap() < s.step(b).unwrap() {
            let _ = g.add_edge_acyclic(EdgeKind::Temporal, a, b);
        }
    }
    assert!(s.validate(&g).is_ok());
    let steps = s.length() + 4;
    (g, s, steps)
}

fn kind_from(i: usize) -> AttackKind {
    AttackKind::ALL[i % AttackKind::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every transformation yields a schedule valid for the attacked
    /// graph, at any budget and seed.
    #[test]
    fn any_attack_preserves_validity(
        ops in 24usize..120,
        gseed in 0u64..64,
        ki in 0usize..4,
        budget in 0.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let (g, s, steps) = design(ops, gseed);
        let out = apply(&g, &s, steps, &AttackConfig { kind: kind_from(ki), budget, seed });
        prop_assert!(out.schedule.validate(&out.graph).is_ok());
    }

    /// Budget 0 is the identity, byte-for-byte, for every kind and seed.
    #[test]
    fn budget_zero_is_byte_identical(
        ops in 24usize..96,
        gseed in 0u64..64,
        ki in 0usize..4,
        seed in 0u64..1_000_000,
    ) {
        let (g, s, steps) = design(ops, gseed);
        let out = apply(&g, &s, steps, &AttackConfig { kind: kind_from(ki), budget: 0.0, seed });
        prop_assert!(out.trace.edits.is_empty());
        prop_assert_eq!(&out.schedule, &s);
        prop_assert_eq!(write_cdfg(&out.graph), write_cdfg(&g));
    }

    /// The same `(input, kind, budget, seed)` tuple reproduces the same
    /// trace, schedule and graph bytes.
    #[test]
    fn same_seed_reproduces_the_outcome(
        ops in 24usize..96,
        gseed in 0u64..64,
        ki in 0usize..4,
        budget in 0.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let (g, s, steps) = design(ops, gseed);
        let cfg = AttackConfig { kind: kind_from(ki), budget, seed };
        let a = apply(&g, &s, steps, &cfg);
        let b = apply(&g, &s, steps, &cfg);
        prop_assert_eq!(&a.trace, &b.trace);
        prop_assert_eq!(a.trace.render(), b.trace.render());
        prop_assert_eq!(&a.schedule, &b.schedule);
        prop_assert_eq!(write_cdfg(&a.graph), write_cdfg(&b.graph));
    }
}

proptest! {
    // Full embed/attack/detect sweeps are heavier; fewer cases suffice.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The whole strength report is a pure function of
    /// `(design, signature, seed)` — parallelism included.
    #[test]
    fn strength_report_is_seed_deterministic(gseed in 0u64..16, seed in 0u64..1_000) {
        let g = layered(&LayeredConfig {
            ops: 80,
            layers: 6,
            seed: gseed,
            ..LayeredConfig::default()
        });
        let ctx = DesignContext::new(g);
        let sig = Signature::from_author("prop-author");
        let cfg = StrengthConfig {
            budgets: vec![0.0, 0.25],
            seed,
            wm: SchedWmConfig::with_node_fraction(0.2),
        };
        let a = strength_report_in(&ctx, &sig, Parallelism::Serial, &cfg);
        let b = strength_report_in(&ctx, &sig, Parallelism::from_env(), &cfg);
        match (a, b) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            // Some random designs cannot host K edges (e.g. TooFewEdges):
            // the failure must at least be parallelism-independent.
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "paths disagree: {a:?} vs {b:?}"),
        }
    }
}
