//! Budgeted, seeded attack transformations on scheduled designs.
//!
//! Every transformation takes a design (graph + schedule), an attack
//! *budget* in `[0, 1]` — the fraction of the solution the attacker is
//! willing to rework — and a deterministic seed, and produces an attacked
//! design plus a reproducible [`AttackTrace`]. Three invariants hold for
//! every kind, budget and seed:
//!
//! * the attacked schedule is **valid** for the attacked graph — the
//!   models assume a competent adversary who keeps the solution working;
//! * budget `0` is the **identity**: the outcome is byte-identical to the
//!   input and the trace records no edits;
//! * the same `(input, kind, budget, seed)` tuple reproduces the same
//!   outcome byte-for-byte on every platform: every random choice draws
//!   from [`localwm_prng::SplitMix64`].

use std::fmt;

use localwm_cdfg::{Cdfg, EdgeId, EdgeKind, NodeId};
use localwm_prng::SplitMix64;
use localwm_sched::Schedule;

/// The attack taxonomy (paper §IV-A's tampering discussion, generalized).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Random legal moves of operations within their live slack windows —
    /// local tampering that preserves the dependence structure.
    Reschedule,
    /// Redirect dependence edges to other live operations (keeping the
    /// graph acyclic and the schedule valid), then re-place the freed
    /// endpoints — structural tampering.
    Rewire,
    /// Re-run scheduling over a contiguous topological subregion —
    /// locality resynthesis, the "redo part of the design" attack.
    Resynth,
    /// Remove a fraction of the temporal (constraint) edges from the
    /// constrained specification and re-synthesize the whole schedule —
    /// constraint stripping, the strongest attack short of redesign.
    Strip,
}

impl AttackKind {
    /// Every kind, in sweep order.
    pub const ALL: [AttackKind; 4] = [
        AttackKind::Reschedule,
        AttackKind::Rewire,
        AttackKind::Resynth,
        AttackKind::Strip,
    ];

    /// Stable wire/CLI name.
    pub fn as_str(self) -> &'static str {
        match self {
            AttackKind::Reschedule => "reschedule",
            AttackKind::Rewire => "rewire",
            AttackKind::Resynth => "resynth",
            AttackKind::Strip => "strip",
        }
    }

    /// Parses a wire/CLI name.
    pub fn parse(s: &str) -> Option<AttackKind> {
        AttackKind::ALL.into_iter().find(|k| k.as_str() == s)
    }

    /// Position within [`AttackKind::ALL`].
    pub fn index(self) -> usize {
        AttackKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("every kind is in ALL")
    }
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One attack run: which transformation, how much of the solution it may
/// rework, and the seed driving every random choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackConfig {
    /// The transformation.
    pub kind: AttackKind,
    /// Fraction of the relevant units (ops or edges) the attack may touch,
    /// clamped to `[0, 1]`. `0` is the identity.
    pub budget: f64,
    /// Seed for the attack's [`SplitMix64`] stream.
    pub seed: u64,
}

/// One applied edit, in application order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackEdit {
    /// Moved one operation to a different control step.
    Move {
        /// The moved operation.
        node: NodeId,
        /// Its step before the move.
        from: u32,
        /// Its step after the move.
        to: u32,
    },
    /// Replaced the edge `src → old_dst` with `src → new_dst`.
    Rewire {
        /// The retained source.
        src: NodeId,
        /// The disconnected destination.
        old_dst: NodeId,
        /// The new destination.
        new_dst: NodeId,
    },
    /// Removed the temporal constraint `src → dst`.
    Strip {
        /// Constraint source.
        src: NodeId,
        /// Constraint destination.
        dst: NodeId,
    },
    /// Re-ran scheduling over `region_len` ops starting at topological
    /// position `region_start`.
    Resynth {
        /// First topological position of the region.
        region_start: usize,
        /// Number of schedulable ops in the region.
        region_len: usize,
    },
}

impl fmt::Display for AttackEdit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AttackEdit::Move { node, from, to } => write!(f, "move {node} {from}->{to}"),
            AttackEdit::Rewire {
                src,
                old_dst,
                new_dst,
            } => write!(f, "rewire {src}->{old_dst} to {src}->{new_dst}"),
            AttackEdit::Strip { src, dst } => write!(f, "strip {src}->{dst}"),
            AttackEdit::Resynth {
                region_start,
                region_len,
            } => write!(f, "resynth @{region_start}+{region_len}"),
        }
    }
}

/// The byte-reproducible record of one attack run.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackTrace {
    /// The transformation that ran.
    pub kind: AttackKind,
    /// The (clamped) budget it ran with.
    pub budget: f64,
    /// The seed that drove it.
    pub seed: u64,
    /// Every applied edit, in order.
    pub edits: Vec<AttackEdit>,
}

impl AttackTrace {
    /// One line per edit, prefixed with a header — stable across
    /// platforms, so traces can be diffed and blessed as goldens.
    pub fn render(&self) -> String {
        let mut out = format!(
            "attack {} budget {} seed {} edits {}\n",
            self.kind,
            self.budget,
            self.seed,
            self.edits.len()
        );
        for e in &self.edits {
            out.push_str(&format!("{e}\n"));
        }
        out
    }
}

/// An attacked design: possibly modified graph, a schedule valid for it,
/// and the trace of what the attacker did.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// The attacked graph (unchanged for [`AttackKind::Reschedule`] and
    /// [`AttackKind::Resynth`]).
    pub graph: Cdfg,
    /// The attacked schedule; always valid for `graph`.
    pub schedule: Schedule,
    /// What happened.
    pub trace: AttackTrace,
}

/// `ceil(budget · n)` with the budget clamped to `[0, 1]` (NaN counts as
/// zero) — any positive budget touches at least one unit.
fn budget_count(budget: f64, n: usize) -> usize {
    if budget.is_nan() {
        return 0;
    }
    let b = budget.clamp(0.0, 1.0);
    ((b * n as f64).ceil() as usize).min(n)
}

/// The live window of `n` given its currently scheduled neighbours:
/// `[max(pred steps)+1, min(succ steps)-1]`, the successor-free side
/// bounded by `available_steps`.
fn live_window(g: &Cdfg, s: &Schedule, n: NodeId, available_steps: u32) -> (u32, u32) {
    let lo = g
        .preds(n)
        .filter_map(|p| s.step(p))
        .max()
        .map_or(1, |m| m + 1);
    let hi = g
        .succs(n)
        .filter_map(|d| s.step(d))
        .min()
        .map_or(available_steps, |m| m.saturating_sub(1));
    (lo, hi)
}

/// Applies one budgeted attack. See the module docs for the invariants
/// (validity, budget-0 identity, seeded determinism).
///
/// `g` is the specification the attacker holds — the public design for
/// [`AttackKind::Reschedule`] / [`AttackKind::Rewire`] /
/// [`AttackKind::Resynth`], the *constrained* (marked) specification for
/// [`AttackKind::Strip`].
///
/// # Panics
///
/// Panics if `schedule` is not valid for `g`.
pub fn apply(
    g: &Cdfg,
    schedule: &Schedule,
    available_steps: u32,
    cfg: &AttackConfig,
) -> AttackOutcome {
    assert!(
        schedule.validate(g).is_ok(),
        "attacks require a valid input schedule"
    );
    let budget = if cfg.budget.is_nan() {
        0.0
    } else {
        cfg.budget.clamp(0.0, 1.0)
    };
    let mut rng = SplitMix64::new(cfg.seed);
    let (graph, schedule, edits) = match cfg.kind {
        AttackKind::Reschedule => reschedule_attack(g, schedule, available_steps, budget, &mut rng),
        AttackKind::Rewire => rewire_attack(g, schedule, available_steps, budget, &mut rng),
        AttackKind::Resynth => resynth_attack(g, schedule, available_steps, budget, &mut rng),
        AttackKind::Strip => strip_attack(g, schedule, budget, &mut rng),
    };
    debug_assert!(schedule.validate(&graph).is_ok());
    AttackOutcome {
        graph,
        schedule,
        trace: AttackTrace {
            kind: cfg.kind,
            budget,
            seed: cfg.seed,
            edits,
        },
    }
}

fn schedulable_ops(g: &Cdfg) -> Vec<NodeId> {
    g.node_ids()
        .filter(|&n| g.kind(n).is_schedulable())
        .collect()
}

/// `budget · op_count` random legal window moves.
fn reschedule_attack(
    g: &Cdfg,
    schedule: &Schedule,
    available_steps: u32,
    budget: f64,
    rng: &mut SplitMix64,
) -> (Cdfg, Schedule, Vec<AttackEdit>) {
    let ops = schedulable_ops(g);
    let moves = budget_count(budget, ops.len());
    let mut s = schedule.clone();
    let mut edits = Vec::new();
    for _ in 0..moves {
        let n = ops[usize::try_from(rng.below(ops.len() as u64)).expect("op index fits")];
        let (lo, hi) = live_window(g, &s, n, available_steps);
        if lo >= hi {
            continue; // pinned by its neighbours
        }
        let from = s.step(n).expect("schedulable ops are scheduled");
        let to = rng.in_range_u32(lo, hi);
        if to != from {
            s.set_step(n, to);
            edits.push(AttackEdit::Move { node: n, from, to });
        }
    }
    (g.clone(), s, edits)
}

/// `budget · edge_count` edge redirections. Each edit picks a live
/// dependence edge `u → v` between scheduled ops, redirects it to a random
/// op `w` scheduled strictly after `u` (rejecting redirections that would
/// create a cycle), and then nudges the freed `v` within its new window so
/// the solution actually changes shape.
fn rewire_attack(
    g: &Cdfg,
    schedule: &Schedule,
    available_steps: u32,
    budget: f64,
    rng: &mut SplitMix64,
) -> (Cdfg, Schedule, Vec<AttackEdit>) {
    let mut g2 = g.clone();
    let mut s = schedule.clone();
    let ops = schedulable_ops(&g2);
    let eligible = |g2: &Cdfg, id: EdgeId| {
        let e = g2.edge(id).expect("live edge");
        e.kind() != EdgeKind::Temporal
            && g2.kind(e.src()).is_schedulable()
            && g2.kind(e.dst()).is_schedulable()
    };
    let base: Vec<EdgeId> = g2.edge_ids().filter(|&id| eligible(&g2, id)).collect();
    let target = budget_count(budget, base.len());
    let mut edits = Vec::new();
    for _ in 0..target {
        let candidates: Vec<EdgeId> = g2.edge_ids().filter(|&id| eligible(&g2, id)).collect();
        if candidates.is_empty() {
            break;
        }
        let id =
            candidates[usize::try_from(rng.below(candidates.len() as u64)).expect("index fits")];
        let (kind, src, old_dst) = {
            let e = g2.edge(id).expect("live edge");
            (e.kind(), e.src(), e.dst())
        };
        let src_step = s.step(src).expect("scheduled");
        // A handful of random attempts to find a legal new destination.
        for _ in 0..8 {
            let w = ops[usize::try_from(rng.below(ops.len() as u64)).expect("index fits")];
            if w == src || w == old_dst {
                continue;
            }
            let w_step = s.step(w).expect("scheduled");
            if w_step <= src_step {
                continue; // would break the schedule ordering
            }
            if g2.add_edge_acyclic(kind, src, w).is_err() {
                continue; // cycle or malformed — try another target
            }
            g2.remove_edge(id).expect("the picked edge is live");
            edits.push(AttackEdit::Rewire {
                src,
                old_dst,
                new_dst: w,
            });
            // The freed destination may now slide: move it somewhere
            // random within its (possibly wider) window.
            let (lo, hi) = live_window(&g2, &s, old_dst, available_steps);
            if lo < hi {
                let from = s.step(old_dst).expect("scheduled");
                let to = rng.in_range_u32(lo, hi);
                if to != from {
                    s.set_step(old_dst, to);
                    edits.push(AttackEdit::Move {
                        node: old_dst,
                        from,
                        to,
                    });
                }
            }
            break;
        }
    }
    (g2, s, edits)
}

/// Re-places a contiguous topological region of `budget · op_count`
/// operations: each op in the region moves to its earliest feasible step
/// plus a random hold of `0..=2`, clamped by its scheduled successors — a
/// partial re-synthesis that compacts (or jitters) the region.
fn resynth_attack(
    g: &Cdfg,
    schedule: &Schedule,
    available_steps: u32,
    budget: f64,
    rng: &mut SplitMix64,
) -> (Cdfg, Schedule, Vec<AttackEdit>) {
    let topo = g.topo_order().expect("attack inputs are DAGs");
    let ops: Vec<NodeId> = topo
        .into_iter()
        .filter(|&n| g.kind(n).is_schedulable())
        .collect();
    let region_len = budget_count(budget, ops.len());
    if region_len == 0 {
        return (g.clone(), schedule.clone(), Vec::new());
    }
    let region_start =
        usize::try_from(rng.below((ops.len() - region_len + 1) as u64)).expect("region start fits");
    let mut s = schedule.clone();
    let mut edits = vec![AttackEdit::Resynth {
        region_start,
        region_len,
    }];
    for &n in &ops[region_start..region_start + region_len] {
        let (lo, hi) = live_window(g, &s, n, available_steps);
        if lo > hi {
            continue; // neighbours leave no room; the current step stands
        }
        let hold = u32::try_from(rng.below(3)).expect("hold fits");
        let to = (lo + hold).min(hi);
        let from = s.step(n).expect("scheduled");
        if to != from {
            s.set_step(n, to);
            edits.push(AttackEdit::Move { node: n, from, to });
        }
    }
    (g.clone(), s, edits)
}

/// Removes `budget · temporal_edge_count` randomly chosen temporal
/// (constraint) edges from the constrained specification, then
/// re-synthesizes the whole schedule with a randomized greedy walk — the
/// attacker re-runs the tool on a partially stripped spec.
fn strip_attack(
    g: &Cdfg,
    schedule: &Schedule,
    budget: f64,
    rng: &mut SplitMix64,
) -> (Cdfg, Schedule, Vec<AttackEdit>) {
    let temporal: Vec<EdgeId> = g
        .edge_ids()
        .filter(|&id| g.edge(id).expect("live edge").kind() == EdgeKind::Temporal)
        .collect();
    let count = budget_count(budget, temporal.len());
    if count == 0 {
        return (g.clone(), schedule.clone(), Vec::new());
    }
    // Partial Fisher–Yates: the first `count` slots are a uniform sample
    // without replacement.
    let mut pool = temporal;
    for i in 0..count {
        let j = i + usize::try_from(rng.below((pool.len() - i) as u64)).expect("index fits");
        pool.swap(i, j);
    }
    let mut g2 = g.clone();
    let mut edits = Vec::new();
    for &id in &pool[..count] {
        let e = g2.remove_edge(id).expect("sampled edge is live");
        edits.push(AttackEdit::Strip {
            src: e.src(),
            dst: e.dst(),
        });
    }
    // Full randomized re-synthesis on the stripped spec.
    let topo = g2.topo_order().expect("stripping keeps the graph acyclic");
    let ops: Vec<NodeId> = topo
        .into_iter()
        .filter(|&n| g2.kind(n).is_schedulable())
        .collect();
    let mut s = Schedule::empty(&g2);
    for &n in &ops {
        let lo = g2
            .preds(n)
            .filter_map(|p| s.step(p))
            .max()
            .map_or(1, |m| m + 1);
        let hold = u32::try_from(rng.below(3)).expect("hold fits");
        s.set_step(n, lo + hold);
    }
    edits.push(AttackEdit::Resynth {
        region_start: 0,
        region_len: ops.len(),
    });
    (g2, s, edits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::generators::{layered, LayeredConfig};
    use localwm_cdfg::write_cdfg;

    fn design() -> (Cdfg, Schedule, u32) {
        let g = layered(&LayeredConfig {
            ops: 80,
            layers: 8,
            seed: 3,
            ..LayeredConfig::default()
        });
        let ctx = localwm_engine::DesignContext::from(&g);
        let s = localwm_core::attack::reschedule_with(&ctx, &mut SplitMix64::new(1)).unwrap();
        let steps = s.length() + 4;
        (g, s, steps)
    }

    #[test]
    fn every_kind_keeps_the_schedule_valid() {
        let (g, s, steps) = design();
        for kind in AttackKind::ALL {
            for &budget in &[0.0, 0.1, 0.5, 1.0] {
                let out = apply(
                    &g,
                    &s,
                    steps,
                    &AttackConfig {
                        kind,
                        budget,
                        seed: 5,
                    },
                );
                assert!(
                    out.schedule.validate(&out.graph).is_ok(),
                    "{kind} budget {budget}"
                );
            }
        }
    }

    #[test]
    fn budget_zero_is_the_identity() {
        let (g, s, steps) = design();
        for kind in AttackKind::ALL {
            let out = apply(
                &g,
                &s,
                steps,
                &AttackConfig {
                    kind,
                    budget: 0.0,
                    seed: 9,
                },
            );
            assert!(out.trace.edits.is_empty(), "{kind}");
            assert_eq!(out.schedule, s, "{kind}");
            assert_eq!(write_cdfg(&out.graph), write_cdfg(&g), "{kind}");
        }
    }

    #[test]
    fn same_seed_reproduces_the_trace() {
        let (g, s, steps) = design();
        for kind in AttackKind::ALL {
            let cfg = AttackConfig {
                kind,
                budget: 0.4,
                seed: 11,
            };
            let a = apply(&g, &s, steps, &cfg);
            let b = apply(&g, &s, steps, &cfg);
            assert_eq!(a.trace, b.trace);
            assert_eq!(a.trace.render(), b.trace.render());
            assert_eq!(a.schedule, b.schedule);
            assert_eq!(write_cdfg(&a.graph), write_cdfg(&b.graph));
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in AttackKind::ALL {
            assert_eq!(AttackKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(AttackKind::parse("nonsense"), None);
    }

    #[test]
    fn budget_count_is_clamped_and_monotone() {
        assert_eq!(budget_count(0.0, 100), 0);
        assert_eq!(budget_count(0.001, 100), 1);
        assert_eq!(budget_count(0.5, 100), 50);
        assert_eq!(budget_count(1.0, 100), 100);
        assert_eq!(budget_count(7.0, 100), 100);
        assert_eq!(budget_count(-3.0, 100), 0);
        assert_eq!(budget_count(f64::NAN, 100), 0);
    }
}
