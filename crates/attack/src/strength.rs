//! Watermark strength reports: sweep the attack suite over budget levels
//! and measure what survives.
//!
//! For one design the engine embeds once, then for every `(budget, kind)`
//! cell derives an independent [`SplitMix64`] sub-stream, applies the
//! attack and re-detects against the *original* specification. A cell
//! records survival (tolerant match at chance probability ≤ 10⁻⁶),
//! detection strength `1 − P_c`, and the solution-quality cost (schedule
//! length delta). Per-budget rows aggregate across kinds;
//! [`aggregate`] averages rows corpus-wide. The whole report is a pure
//! function of `(design, signature, config)` — byte-identical on every
//! platform and under every parallelism setting.

use localwm_core::{SchedWmConfig, SchedulingWatermarker, WatermarkError};
use localwm_engine::{DesignContext, Parallelism};
use localwm_prng::{Signature, SplitMix64};

use crate::transform::{apply, AttackConfig, AttackKind, AttackOutcome};

/// The default budget sweep: identity, light, moderate, heavy, drastic.
pub const DEFAULT_BUDGETS: [f64; 5] = [0.0, 0.05, 0.15, 0.3, 0.6];

/// Chance-probability tolerance under which a detection still counts as a
/// match (the toolkit's standard forensic threshold).
pub const SURVIVAL_TOLERANCE: f64 = 1e-6;

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct StrengthConfig {
    /// Budget levels to sweep, in order.
    pub budgets: Vec<f64>,
    /// Master seed; every `(budget, kind)` cell derives its own stream.
    pub seed: u64,
    /// Watermark parameters used for the embed/detect round trip.
    pub wm: SchedWmConfig,
}

impl Default for StrengthConfig {
    fn default() -> Self {
        StrengthConfig {
            budgets: DEFAULT_BUDGETS.to_vec(),
            seed: 0,
            wm: SchedWmConfig::default(),
        }
    }
}

/// One `(kind, budget)` measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct StrengthCell {
    /// The attack that ran.
    pub kind: AttackKind,
    /// The budget it ran at.
    pub budget: f64,
    /// Number of edits the attack actually applied.
    pub edits: usize,
    /// Whether detection still attributes authorship
    /// (chance probability ≤ [`SURVIVAL_TOLERANCE`]).
    pub survived: bool,
    /// Detection strength `1 − P_c` after the attack.
    pub strength: f64,
    /// `log₁₀` of the coincidence probability after the attack.
    pub log10_pc: f64,
    /// Watermark constraints still satisfied.
    pub satisfied: usize,
    /// Watermark constraints checked.
    pub checked: usize,
    /// Length of the attacked schedule.
    pub schedule_length: u32,
    /// Attacked length minus baseline length (negative = the attack
    /// *improved* latency, e.g. by compacting stripped constraints).
    pub steps_delta: i64,
}

/// Per-budget aggregation across attack kinds.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetRow {
    /// The budget level.
    pub budget: f64,
    /// Fraction of attack kinds the watermark survived.
    pub survival_rate: f64,
    /// Mean detection strength `1 − P_c` across kinds.
    pub mean_strength: f64,
    /// Mean schedule-length delta across kinds.
    pub mean_steps_delta: f64,
}

/// The robustness report for one design.
#[derive(Debug, Clone, PartialEq)]
pub struct StrengthReport {
    /// Schedulable operations in the design.
    pub ops: usize,
    /// Temporal edges the watermark embedded.
    pub wm_edges: usize,
    /// Unattacked schedule length.
    pub baseline_length: u32,
    /// `log₁₀ P_c` of the unattacked embedding.
    pub baseline_log10_pc: f64,
    /// Detection strength `1 − P_c` of the unattacked embedding.
    pub baseline_strength: f64,
    /// The master seed the sweep ran with.
    pub seed: u64,
    /// The budget levels swept.
    pub budgets: Vec<f64>,
    /// Every `(budget, kind)` cell, budgets outer, kinds inner.
    pub cells: Vec<StrengthCell>,
    /// One aggregated row per budget.
    pub rows: Vec<BudgetRow>,
}

/// One attack plus its detection outcome — what the `attack` service kind
/// returns.
#[derive(Debug, Clone)]
pub struct AttackRun {
    /// The attacked design and trace.
    pub outcome: AttackOutcome,
    /// The measurement for this single cell.
    pub cell: StrengthCell,
    /// Unattacked schedule length, for comparison.
    pub baseline_length: u32,
    /// Temporal edges the watermark embedded.
    pub wm_edges: usize,
}

/// Which specification the attacker holds for `kind`: constraint stripping
/// sees the constrained (marked) spec, everything else the public design.
fn attack_surface<'a>(
    kind: AttackKind,
    ctx: &'a DesignContext,
    emb: &'a localwm_core::SchedEmbedding,
) -> &'a localwm_cdfg::Cdfg {
    match kind {
        AttackKind::Strip => &emb.marked,
        _ => ctx.graph(),
    }
}

fn measure(
    wm: &SchedulingWatermarker,
    ctx: &DesignContext,
    sig: &Signature,
    par: Parallelism,
    outcome: &AttackOutcome,
    cfg: &AttackConfig,
    baseline_length: u32,
) -> Result<StrengthCell, WatermarkError> {
    let ev = wm.detect_in(&outcome.schedule, ctx, sig, par)?;
    let satisfied = ev.checks.iter().filter(|&&(_, _, ok)| ok).count();
    let length = outcome.schedule.length();
    Ok(StrengthCell {
        kind: cfg.kind,
        budget: cfg.budget,
        edits: outcome.trace.edits.len(),
        survived: ev.is_match_with_tolerance(SURVIVAL_TOLERANCE),
        strength: 1.0 - ev.chance_probability(),
        log10_pc: ev.log10_pc,
        satisfied,
        checked: ev.checks.len(),
        schedule_length: length,
        steps_delta: i64::from(length) - i64::from(baseline_length),
    })
}

/// Runs one attack against a freshly embedded watermark and measures the
/// surviving evidence.
///
/// # Errors
///
/// Propagates embedding/detection failures (e.g.
/// [`WatermarkError::NoIncomparablePairs`] on serial designs).
pub fn attack_once_in(
    ctx: &DesignContext,
    sig: &Signature,
    par: Parallelism,
    cfg: &AttackConfig,
    wm_cfg: &SchedWmConfig,
) -> Result<AttackRun, WatermarkError> {
    let wm = SchedulingWatermarker::new(wm_cfg.clone());
    let emb = wm.embed_in(ctx, sig, par)?;
    let baseline_length = emb.schedule.length();
    let surface = attack_surface(cfg.kind, ctx, &emb);
    let outcome = apply(surface, &emb.schedule, emb.available_steps, cfg);
    let cell = measure(&wm, ctx, sig, par, &outcome, cfg, baseline_length)?;
    Ok(AttackRun {
        outcome,
        cell,
        baseline_length,
        wm_edges: emb.edges.len(),
    })
}

/// Sweeps every attack kind over every budget level and assembles the
/// design's [`StrengthReport`].
///
/// # Errors
///
/// Propagates embedding/detection failures (e.g.
/// [`WatermarkError::NoIncomparablePairs`] on serial designs).
pub fn strength_report_in(
    ctx: &DesignContext,
    sig: &Signature,
    par: Parallelism,
    cfg: &StrengthConfig,
) -> Result<StrengthReport, WatermarkError> {
    let wm = SchedulingWatermarker::new(cfg.wm.clone());
    let emb = wm.embed_in(ctx, sig, par)?;
    let baseline = wm.detect_in(&emb.schedule, ctx, sig, par)?;
    let baseline_length = emb.schedule.length();
    let base = SplitMix64::new(cfg.seed);
    // Every `(budget, kind)` cell derives an independent sub-stream from
    // the master seed alone — stable under reordering or extending the
    // sweep grid — so the grid fans out over the engine pool and
    // reassembles positionally. Detection inside a cell runs serial: the
    // sweep is the parallel axis, and nesting pools would oversubscribe.
    // Cell values (and therefore report bytes) are identical under every
    // parallelism setting.
    let grid: Vec<(u64, f64, AttackKind)> = cfg
        .budgets
        .iter()
        .enumerate()
        .flat_map(|(bi, &budget)| {
            AttackKind::ALL
                .into_iter()
                .map(move |kind| (bi as u64, budget, kind))
        })
        .collect();
    let measured = localwm_engine::par_map(par, &grid, |_, &(bi, budget, kind)| {
        let cell_seed = base.derive((bi << 8) | kind.index() as u64).next_u64();
        let attack_cfg = AttackConfig {
            kind,
            budget,
            seed: cell_seed,
        };
        let surface = attack_surface(kind, ctx, &emb);
        let outcome = apply(surface, &emb.schedule, emb.available_steps, &attack_cfg);
        measure(
            &wm,
            ctx,
            sig,
            Parallelism::Serial,
            &outcome,
            &attack_cfg,
            baseline_length,
        )
    });
    let mut cells = Vec::with_capacity(grid.len());
    for cell in measured {
        cells.push(cell?);
    }
    let mut rows = Vec::with_capacity(cfg.budgets.len());
    for (bi, &budget) in cfg.budgets.iter().enumerate() {
        let row_cells = &cells[bi * AttackKind::ALL.len()..(bi + 1) * AttackKind::ALL.len()];
        let n = row_cells.len() as f64;
        rows.push(BudgetRow {
            budget,
            survival_rate: row_cells.iter().filter(|c| c.survived).count() as f64 / n,
            mean_strength: row_cells.iter().map(|c| c.strength).sum::<f64>() / n,
            mean_steps_delta: row_cells.iter().map(|c| c.steps_delta as f64).sum::<f64>() / n,
        });
    }
    Ok(StrengthReport {
        ops: ctx.graph().op_count(),
        wm_edges: emb.edges.len(),
        baseline_length,
        baseline_log10_pc: baseline.log10_pc,
        baseline_strength: 1.0 - baseline.chance_probability(),
        seed: cfg.seed,
        budgets: cfg.budgets.clone(),
        cells,
        rows,
    })
}

/// Averages per-budget rows across several designs' reports. Budgets are
/// grouped by exact value in order of first appearance, so reports swept
/// over the same grid aggregate positionally.
pub fn aggregate<'a>(reports: impl IntoIterator<Item = &'a StrengthReport>) -> Vec<BudgetRow> {
    let mut order: Vec<f64> = Vec::new();
    let mut sums: Vec<(f64, f64, f64, usize)> = Vec::new();
    for report in reports {
        for row in &report.rows {
            let idx = match order
                .iter()
                .position(|&b| b.to_bits() == row.budget.to_bits())
            {
                Some(i) => i,
                None => {
                    order.push(row.budget);
                    sums.push((0.0, 0.0, 0.0, 0));
                    order.len() - 1
                }
            };
            let s = &mut sums[idx];
            s.0 += row.survival_rate;
            s.1 += row.mean_strength;
            s.2 += row.mean_steps_delta;
            s.3 += 1;
        }
    }
    order
        .into_iter()
        .zip(sums)
        .map(|(budget, (sr, ms, md, n))| BudgetRow {
            budget,
            survival_rate: sr / n as f64,
            mean_strength: ms / n as f64,
            mean_steps_delta: md / n as f64,
        })
        .collect()
}

/// Hand-written [`serde`] impls (the vendored offline serde stand-in has
/// no derive macros; see `vendor/README.md`).
mod serde_impls {
    use serde::{object, Serialize, Value};

    use super::{BudgetRow, StrengthCell, StrengthReport};
    use crate::transform::AttackKind;

    impl Serialize for AttackKind {
        fn to_value(&self) -> Value {
            Value::Str(self.as_str().to_string())
        }
    }

    impl Serialize for StrengthCell {
        fn to_value(&self) -> Value {
            object(vec![
                ("kind", self.kind.to_value()),
                ("budget", self.budget.to_value()),
                ("edits", self.edits.to_value()),
                ("survived", self.survived.to_value()),
                ("strength", self.strength.to_value()),
                ("log10_pc", self.log10_pc.to_value()),
                ("satisfied", self.satisfied.to_value()),
                ("checked", self.checked.to_value()),
                ("schedule_length", self.schedule_length.to_value()),
                ("steps_delta", self.steps_delta.to_value()),
            ])
        }
    }

    impl Serialize for BudgetRow {
        fn to_value(&self) -> Value {
            object(vec![
                ("budget", self.budget.to_value()),
                ("survival_rate", self.survival_rate.to_value()),
                ("mean_strength", self.mean_strength.to_value()),
                ("mean_steps_delta", self.mean_steps_delta.to_value()),
            ])
        }
    }

    impl Serialize for StrengthReport {
        fn to_value(&self) -> Value {
            object(vec![
                ("ops", self.ops.to_value()),
                ("wm_edges", self.wm_edges.to_value()),
                ("baseline_length", self.baseline_length.to_value()),
                ("baseline_log10_pc", self.baseline_log10_pc.to_value()),
                ("baseline_strength", self.baseline_strength.to_value()),
                ("seed", self.seed.to_value()),
                ("budgets", self.budgets.to_value()),
                ("cells", self.cells.to_value()),
                ("rows", self.rows.to_value()),
            ])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::generators::{layered, LayeredConfig};
    use serde::Serialize;

    fn ctx() -> DesignContext {
        DesignContext::new(layered(&LayeredConfig {
            ops: 100,
            layers: 8,
            seed: 4,
            ..LayeredConfig::default()
        }))
    }

    // A quarter of the ops constrained: K = 25 edges on the 100-op test
    // design, comfortably below the 1e-6 survival tolerance at baseline.
    fn quick_cfg() -> StrengthConfig {
        StrengthConfig {
            budgets: vec![0.0, 0.2],
            wm: SchedWmConfig::with_node_fraction(0.25),
            ..StrengthConfig::default()
        }
    }

    #[test]
    fn report_shape_and_identity_budget() {
        let ctx = ctx();
        let sig = Signature::from_author("strength-author");
        let report = strength_report_in(&ctx, &sig, Parallelism::Serial, &quick_cfg()).unwrap();
        assert_eq!(report.cells.len(), 2 * AttackKind::ALL.len());
        assert_eq!(report.rows.len(), 2);
        // Budget 0 is the identity: everything survives at full strength.
        let zero = &report.rows[0];
        assert_eq!(zero.budget, 0.0);
        assert_eq!(zero.survival_rate, 1.0);
        assert_eq!(zero.mean_steps_delta, 0.0);
        for cell in &report.cells[..AttackKind::ALL.len()] {
            assert_eq!(cell.edits, 0);
            assert_eq!(cell.satisfied, cell.checked);
            assert_eq!(cell.steps_delta, 0);
        }
        assert!(report.baseline_strength > 1.0 - SURVIVAL_TOLERANCE);
    }

    #[test]
    fn same_seed_reproduces_the_report_and_its_bytes() {
        let ctx = ctx();
        let sig = Signature::from_author("strength-author");
        let a = strength_report_in(&ctx, &sig, Parallelism::Serial, &quick_cfg()).unwrap();
        let b = strength_report_in(&ctx, &sig, Parallelism::from_env(), &quick_cfg()).unwrap();
        // Threads(3) forces a real fan-out of the sweep grid over the
        // engine pool even on a single-core host.
        let c = strength_report_in(&ctx, &sig, Parallelism::Threads(3), &quick_cfg()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(
            serde_json::to_string(&a.to_value()),
            serde_json::to_string(&b.to_value())
        );
        assert_eq!(
            serde_json::to_string(&a.to_value()),
            serde_json::to_string(&c.to_value())
        );
    }

    #[test]
    fn attack_once_matches_the_sweep_semantics() {
        let ctx = ctx();
        let sig = Signature::from_author("once-author");
        let run = attack_once_in(
            &ctx,
            &sig,
            Parallelism::Serial,
            &AttackConfig {
                kind: AttackKind::Reschedule,
                budget: 0.0,
                seed: 3,
            },
            &SchedWmConfig::with_node_fraction(0.25),
        )
        .unwrap();
        assert!(run.cell.survived);
        assert_eq!(run.cell.steps_delta, 0);
        assert!(run.wm_edges > 0);
    }

    #[test]
    fn aggregation_averages_by_budget() {
        let mk = |sr| StrengthReport {
            ops: 1,
            wm_edges: 1,
            baseline_length: 1,
            baseline_log10_pc: -9.0,
            baseline_strength: 1.0,
            seed: 0,
            budgets: vec![0.0, 0.5],
            cells: Vec::new(),
            rows: vec![
                BudgetRow {
                    budget: 0.0,
                    survival_rate: 1.0,
                    mean_strength: 1.0,
                    mean_steps_delta: 0.0,
                },
                BudgetRow {
                    budget: 0.5,
                    survival_rate: sr,
                    mean_strength: sr,
                    mean_steps_delta: 2.0,
                },
            ],
        };
        let (a, b) = (mk(1.0), mk(0.0));
        let rows = aggregate([&a, &b]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].survival_rate, 1.0);
        assert_eq!(rows[1].survival_rate, 0.5);
        assert_eq!(rows[1].mean_steps_delta, 2.0);
    }

    #[test]
    fn serial_designs_surface_the_typed_error() {
        use localwm_cdfg::{Cdfg, OpKind};
        let mut g = Cdfg::new();
        let mut prev = g.add_node(OpKind::Input);
        for _ in 0..6 {
            let n = g.add_node(OpKind::Add);
            g.add_data_edge(prev, n).unwrap();
            prev = n;
        }
        let ctx = DesignContext::new(g);
        let err = strength_report_in(
            &ctx,
            &Signature::from_author("serial-author"),
            Parallelism::Serial,
            &StrengthConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, WatermarkError::NoIncomparablePairs { .. }));
    }
}
