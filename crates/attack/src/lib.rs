//! Adversarial robustness for local watermarks.
//!
//! The paper argues (§IV-A) that defeating a local watermark requires
//! reworking most of the solution. This crate turns that argument into a
//! measurement harness:
//!
//! * [`transform`] — a seeded, budgeted attack suite
//!   ([`AttackKind::Reschedule`] / [`AttackKind::Rewire`] /
//!   [`AttackKind::Resynth`] / [`AttackKind::Strip`]) whose every run is
//!   byte-reproducible from `(input, budget, seed)` and always yields a
//!   *valid* attacked solution;
//! * [`strength`] — a resilience engine that sweeps the suite over budget
//!   levels and reports watermark survival, detection strength `1 − P_c`
//!   and solution-quality cost per design ([`StrengthReport`]) and
//!   aggregated corpus-wide ([`aggregate`]).
//!
//! The `strength`/`attack` service kinds in `localwm-serve`, the
//! `localwm attack` / `localwm strength` CLI subcommands and the
//! `attack_sweep` bench all sit on these two modules, so every surface
//! reports identical bytes for identical inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strength;
pub mod transform;

pub use strength::{
    aggregate, attack_once_in, strength_report_in, AttackRun, BudgetRow, StrengthCell,
    StrengthConfig, StrengthReport, DEFAULT_BUDGETS, SURVIVAL_TOLERANCE,
};
pub use transform::{apply, AttackConfig, AttackEdit, AttackKind, AttackOutcome, AttackTrace};
