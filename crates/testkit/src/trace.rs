//! Edit traces: recorded interactive sessions, replayed two ways.
//!
//! A *trace* is a text file interleaving session edit scripts (the same
//! grammar `localwm-serve`'s `mutate` accepts) with analysis queries:
//!
//! ```text
//! add-edge temp A1 A5          # edit lines batch into one mutate
//! add-node t9 not
//! add-edge data A9 t9
//! query timing                 # or: query timing <deadline>
//! query analyze 64 7           # samples, seed
//! ```
//!
//! Consecutive edit lines form one `mutate` step; each `query` line is its
//! own step. The differential oracle ([`run_trace_differential`]) replays
//! the same trace through three lanes and demands byte-identical response
//! lines, typed errors included:
//!
//! * `incremental` — one held [`SessionState`], dirty-cone patching across
//!   every step; the reference lane.
//! * `scratch` — a **fresh** session per step: the original design is
//!   re-opened and every prior edit batch replayed before the step runs,
//!   so nothing incremental survives. (Replaying edits, not re-parsing the
//!   mutated design text, is deliberate: a session may hold graphs the
//!   text format cannot round-trip, e.g. mid-script arity violations.)
//! * `tcp-session` — a real server on a loopback socket, the trace driven
//!   through the wire protocol's `open`/`mutate`/`close`.
//!
//! [`seeded_trace`] generates deterministic traces (temporal-edge churn
//! that keeps the node count fixed, so the incremental Monte-Carlo capture
//! stays patchable), and [`named_layered`] builds large designs with
//! addressable node names for the `edit_trace` benchmark.

use std::collections::HashSet;
use std::time::Duration;

use localwm_cdfg::{Cdfg, OpKind};
use localwm_engine::{DesignContext, Parallelism};
use localwm_serve::fault::SplitMix64;
use localwm_serve::session::SessionState;
use localwm_serve::{Client, Request, RequestKind, Response, ServeConfig};

/// One replayable trace step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceStep {
    /// A batch of consecutive edit lines — one `mutate` request.
    Edits(String),
    /// `query timing [deadline]`.
    Timing {
        /// Optional deadline (control steps) for the window table.
        deadline: Option<u32>,
    },
    /// `query analyze <samples> <seed>`.
    Analyze {
        /// Monte-Carlo sample count.
        samples: usize,
        /// Monte-Carlo seed.
        seed: u64,
    },
}

/// Parses trace text into steps; consecutive edit lines batch into one
/// [`TraceStep::Edits`].
///
/// # Errors
///
/// Returns a message naming the offending line for malformed `query`
/// lines. Edit lines are *not* validated here — bad edits are trace
/// content (they must replay to the same typed error in every lane).
pub fn parse_trace(text: &str) -> Result<Vec<TraceStep>, String> {
    let mut steps = Vec::new();
    let mut batch = String::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(query) = line.strip_prefix("query ") else {
            batch.push_str(line);
            batch.push('\n');
            continue;
        };
        if !batch.is_empty() {
            steps.push(TraceStep::Edits(std::mem::take(&mut batch)));
        }
        let toks: Vec<&str> = query.split_whitespace().collect();
        let step = match toks.as_slice() {
            ["timing"] => TraceStep::Timing { deadline: None },
            ["timing", d] => TraceStep::Timing {
                deadline: Some(
                    d.parse()
                        .map_err(|_| format!("trace line {}: bad deadline `{d}`", ln + 1))?,
                ),
            },
            ["analyze", s, seed] => TraceStep::Analyze {
                samples: s
                    .parse()
                    .map_err(|_| format!("trace line {}: bad samples `{s}`", ln + 1))?,
                seed: seed
                    .parse()
                    .map_err(|_| format!("trace line {}: bad seed `{seed}`", ln + 1))?,
            },
            _ => {
                return Err(format!(
                    "trace line {}: unrecognized query `{query}` \
                     (timing [deadline] | analyze <samples> <seed>)",
                    ln + 1
                ))
            }
        };
        steps.push(step);
    }
    if !batch.is_empty() {
        steps.push(TraceStep::Edits(batch));
    }
    Ok(steps)
}

/// Shape of a generated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpec {
    /// Seed for the edit mix.
    pub seed: u64,
    /// Number of edit batches (each followed by an `analyze` query).
    pub edit_steps: usize,
    /// Edit lines per batch.
    pub edits_per_step: usize,
    /// Sample count for the generated `analyze` queries.
    pub samples: usize,
}

/// Generates a deterministic trace against `graph`: temporal-edge churn
/// (adds forward in the base topological order, removals of previously
/// added edges) with an `analyze` query after every batch and a `timing`
/// query every fourth. Node count never changes, so the session's
/// Monte-Carlo capture stays patchable across the whole trace.
///
/// Edits are biased toward the tail of the topological order to keep
/// dirty cones small — the regime incremental recomputation exists for.
///
/// # Errors
///
/// Returns a message if the graph is cyclic or has unnamed nodes (the
/// edit grammar addresses nodes by name).
pub fn seeded_trace(graph: &Cdfg, spec: &TraceSpec) -> Result<String, String> {
    let ctx = DesignContext::new(graph.clone());
    let order = ctx.try_topo().map_err(|e| e.to_string())?;
    let names: Vec<String> = order
        .iter()
        .map(|&n| {
            graph
                .node_name(n)
                .map(str::to_owned)
                .ok_or_else(|| format!("node {n} has no name; traces address nodes by name"))
        })
        .collect::<Result<_, _>>()?;
    let n = names.len();
    if n < 4 {
        return Err("design too small to trace".to_owned());
    }
    let mut rng = SplitMix64::new(spec.seed ^ 0x007A_C30F_ED17);
    // One analysis seed for the whole trace: an interactive client watches
    // the *same* query update as it edits, which is also what keeps the
    // session's Monte-Carlo capture reusable (the seed keys the cache).
    let analyze_seed = rng.below(1 << 16);
    let mut live: Vec<(usize, usize)> = Vec::new();
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let mut out = String::new();
    for step in 0..spec.edit_steps {
        for _ in 0..spec.edits_per_step {
            let remove = !live.is_empty() && rng.below(100) < 30;
            if remove {
                let k = usize::try_from(rng.below(live.len() as u64)).expect("index fits");
                let (i, j) = live.swap_remove(k);
                seen.remove(&(i, j));
                out.push_str(&format!("remove-edge temp {} {}\n", names[i], names[j]));
                continue;
            }
            // Forward w.r.t. the base topological order, upper half: the
            // base order stays valid after every add, and cones stay small.
            let lo = n / 2;
            for _ in 0..16 {
                let i = lo + usize::try_from(rng.below((n - 1 - lo) as u64)).expect("index fits");
                let j = i + 1 + usize::try_from(rng.below((n - 1 - i) as u64)).expect("index fits");
                if seen.insert((i, j)) {
                    live.push((i, j));
                    out.push_str(&format!("add-edge temp {} {}\n", names[i], names[j]));
                    break;
                }
            }
        }
        if step % 4 == 3 {
            out.push_str("query timing\n");
        }
        out.push_str(&format!("query analyze {} {analyze_seed}\n", spec.samples));
    }
    Ok(out)
}

/// A layered random DAG with *named* nodes (`i<k>` inputs, `n<k>` ops), so
/// generated traces can address every node. Data-operand arity is honored
/// (`add` takes two predecessors, `not` one), so the design round-trips
/// through the text format.
pub fn named_layered(ops: usize, inputs: usize, layers: usize, seed: u64) -> Cdfg {
    let mut g = Cdfg::new();
    let mut rng = SplitMix64::new(seed ^ 0x1A7E_2ED0);
    let inputs = inputs.max(2);
    let layers = layers.max(1);
    let mut prev: Vec<localwm_cdfg::NodeId> = (0..inputs)
        .map(|k| g.add_named_node(OpKind::Input, format!("i{k}")))
        .collect();
    let mut all = prev.clone();
    let per_layer = ops.div_ceil(layers).max(1);
    let mut made = 0usize;
    for _ in 0..layers {
        let mut layer = Vec::with_capacity(per_layer);
        for _ in 0..per_layer {
            if made >= ops {
                break;
            }
            let id = if rng.below(100) < 70 {
                let node = g.add_named_node(OpKind::Add, format!("n{made}"));
                let a = prev[usize::try_from(rng.below(prev.len() as u64)).expect("fits")];
                let b = all[usize::try_from(rng.below(all.len() as u64)).expect("fits")];
                g.add_data_edge(a, node).expect("forward edge");
                g.add_data_edge(b, node).expect("forward edge");
                node
            } else {
                let node = g.add_named_node(OpKind::Not, format!("n{made}"));
                let a = prev[usize::try_from(rng.below(prev.len() as u64)).expect("fits")];
                g.add_data_edge(a, node).expect("forward edge");
                node
            };
            made += 1;
            layer.push(id);
        }
        if layer.is_empty() {
            break;
        }
        all.extend(layer.iter().copied());
        prev = layer;
    }
    g
}

/// One lane disagreement at a trace step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMismatch {
    /// Lane that diverged from the incremental reference.
    pub lane: String,
    /// Step index in the parsed trace.
    pub step: usize,
    /// The reference (incremental) response line.
    pub want: String,
    /// The diverging lane's line.
    pub got: String,
}

/// Outcome of a trace differential run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReport {
    /// Steps replayed.
    pub steps: usize,
    /// Typed-error responses in the reference lane (covered, not skipped).
    pub error_responses: usize,
    /// Every lane disagreement (empty = all lanes byte-identical).
    pub mismatches: Vec<TraceMismatch>,
}

fn step_response(state: &mut SessionState, session: &str, id: u64, step: &TraceStep) -> String {
    let (kind, result) = match step {
        TraceStep::Edits(edits) => ("mutate", state.mutate(session, edits)),
        TraceStep::Timing { deadline } => {
            let mut req = Request::new(RequestKind::Timing);
            req.deadline = *deadline;
            ("timing", state.timing(&req))
        }
        TraceStep::Analyze { samples, seed } => {
            let mut req = Request::new(RequestKind::Analyze);
            req.samples = Some(*samples);
            req.seed = Some(*seed);
            ("analyze", state.analyze(&req, Parallelism::Serial))
        }
    };
    match result {
        Ok(v) => Response::success(Some(id), kind, v),
        Err(e) => Response::failure(Some(id), kind, e),
    }
    .to_line()
}

/// Replays the trace through one held session — the incremental lane.
///
/// # Errors
///
/// Returns a message if the design itself does not parse (traces assume a
/// valid starting design; *edits* may fail and that is trace content).
pub fn replay_incremental(
    design: &str,
    steps: &[TraceStep],
    session: &str,
) -> Result<Vec<String>, String> {
    let mut state = SessionState::open(design).map_err(|e| e.to_string())?;
    Ok(steps
        .iter()
        .enumerate()
        .map(|(i, step)| step_response(&mut state, session, i as u64, step))
        .collect())
}

/// Replays the trace with a fresh session per step — the scratch lane.
/// Step `k` re-opens the original design and replays edit batches
/// `0..k` before executing, so no incremental state survives between
/// steps.
///
/// # Errors
///
/// Same as [`replay_incremental`].
pub fn replay_scratch(
    design: &str,
    steps: &[TraceStep],
    session: &str,
) -> Result<Vec<String>, String> {
    let mut lines = Vec::with_capacity(steps.len());
    for (k, step) in steps.iter().enumerate() {
        let mut state = SessionState::open(design).map_err(|e| e.to_string())?;
        for prior in &steps[..k] {
            if let TraceStep::Edits(edits) = prior {
                // Failures replay identically (prefix retained) — ignore
                // the result, the *response* was compared at its own step.
                let _ = state.mutate(session, edits);
            }
        }
        lines.push(step_response(&mut state, session, k as u64, step));
    }
    Ok(lines)
}

/// Replays the trace through a real server over TCP (`open`, one request
/// per step, `close`), returning the per-step raw response lines.
///
/// # Errors
///
/// Returns a message on socket failures or if the `open` itself fails.
pub fn replay_tcp(design: &str, steps: &[TraceStep], session: &str) -> Result<Vec<String>, String> {
    let handle = localwm_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        queue_depth: 16,
        cache_cap: 2,
        default_timeout_ms: None,
        metrics_out: None,
        fault_plan: None,
        session_idle_ms: None,
        store_dir: None,
        pipeline_window: localwm_serve::server::DEFAULT_PIPELINE_WINDOW,
    })
    .map_err(|e| format!("bind: {e}"))?;
    let run = || -> Result<Vec<String>, String> {
        let mut c = Client::connect_within(&handle.addr().to_string(), Duration::from_secs(5))
            .map_err(|e| format!("connect: {e}"))?;
        let mut open = Request::new(RequestKind::Open);
        open.id = Some(u64::MAX);
        open.session = Some(session.to_owned());
        open.design = Some(design.to_owned());
        let opened = c.call(&open).map_err(|e| format!("open: {e}"))?;
        if !opened.ok {
            return Err(format!("open refused: {:?}", opened.error));
        }
        let mut lines = Vec::with_capacity(steps.len());
        for (i, step) in steps.iter().enumerate() {
            let mut req = match step {
                TraceStep::Edits(edits) => {
                    let mut r = Request::new(RequestKind::Mutate);
                    r.edits = Some(edits.clone());
                    r
                }
                TraceStep::Timing { deadline } => {
                    let mut r = Request::new(RequestKind::Timing);
                    r.deadline = *deadline;
                    r
                }
                TraceStep::Analyze { samples, seed } => {
                    let mut r = Request::new(RequestKind::Analyze);
                    r.samples = Some(*samples);
                    r.seed = Some(*seed);
                    r
                }
            };
            req.id = Some(i as u64);
            req.session = Some(session.to_owned());
            c.send(&req).map_err(|e| format!("send: {e}"))?;
            lines.push(c.recv_line().map_err(|e| format!("recv: {e}"))?);
        }
        let mut close = Request::new(RequestKind::Close);
        close.session = Some(session.to_owned());
        let _ = c.call(&close);
        Ok(lines)
    };
    let lines = run();
    handle.shutdown();
    lines
}

/// Runs the full trace differential: incremental (reference) vs scratch
/// vs a real TCP session, byte-compared per step.
///
/// # Errors
///
/// Returns a message if a lane cannot run at all (bad starting design,
/// socket failure). Disagreements are *not* errors — they land in
/// [`TraceReport::mismatches`].
pub fn run_trace_differential(design: &str, trace: &str) -> Result<TraceReport, String> {
    let steps = parse_trace(trace)?;
    let session = "trace";
    let reference = replay_incremental(design, &steps, session)?;
    let lanes = vec![
        (
            "scratch".to_owned(),
            replay_scratch(design, &steps, session)?,
        ),
        (
            "tcp-session".to_owned(),
            replay_tcp(design, &steps, session)?,
        ),
    ];
    let mut mismatches = Vec::new();
    for (lane, lines) in &lanes {
        for (i, (want, got)) in reference.iter().zip(lines).enumerate() {
            if want != got {
                mismatches.push(TraceMismatch {
                    lane: lane.clone(),
                    step: i,
                    want: want.clone(),
                    got: got.clone(),
                });
            }
        }
        if lines.len() != reference.len() {
            mismatches.push(TraceMismatch {
                lane: lane.clone(),
                step: reference.len().min(lines.len()),
                want: format!("{} lines", reference.len()),
                got: format!("{} lines", lines.len()),
            });
        }
    }
    Ok(TraceReport {
        steps: steps.len(),
        error_responses: reference
            .iter()
            .filter(|l| l.contains("\"ok\":false"))
            .count(),
        mismatches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::designs::iir4_parallel;
    use localwm_cdfg::write_cdfg;

    #[test]
    fn parse_batches_edits_and_reads_queries() {
        let steps = parse_trace(
            "# header\nadd-edge temp A1 A5\nadd-node t1 not\nquery timing 9\n\nquery analyze 32 4\nremove-edge temp A1 A5\n",
        )
        .unwrap();
        assert_eq!(
            steps,
            vec![
                TraceStep::Edits("add-edge temp A1 A5\nadd-node t1 not\n".to_owned()),
                TraceStep::Timing { deadline: Some(9) },
                TraceStep::Analyze {
                    samples: 32,
                    seed: 4
                },
                TraceStep::Edits("remove-edge temp A1 A5\n".to_owned()),
            ]
        );
        assert!(parse_trace("query analyze nope 4\n").is_err());
        assert!(parse_trace("query explode\n").is_err());
    }

    #[test]
    fn seeded_traces_are_deterministic_and_replayable() {
        let g = iir4_parallel();
        let spec = TraceSpec {
            seed: 11,
            edit_steps: 6,
            edits_per_step: 2,
            samples: 16,
        };
        let a = seeded_trace(&g, &spec).unwrap();
        assert_eq!(a, seeded_trace(&g, &spec).unwrap());
        let steps = parse_trace(&a).unwrap();
        let lines = replay_incremental(&write_cdfg(&g), &steps, "t").unwrap();
        assert_eq!(lines.len(), steps.len());
        // Every generated edit applies cleanly (forward temporal churn).
        assert!(lines.iter().all(|l| l.contains("\"ok\":true")), "{lines:?}");
    }

    #[test]
    fn differential_lanes_agree_on_a_seeded_trace() {
        let g = iir4_parallel();
        let trace = seeded_trace(
            &g,
            &TraceSpec {
                seed: 3,
                edit_steps: 4,
                edits_per_step: 2,
                samples: 24,
            },
        )
        .unwrap();
        let report = run_trace_differential(&write_cdfg(&g), &trace).unwrap();
        assert!(report.mismatches.is_empty(), "{:?}", report.mismatches);
        assert!(report.steps >= 8);
    }

    #[test]
    fn typed_errors_replay_identically_in_every_lane() {
        let g = iir4_parallel();
        // A mid-trace failing batch (cycle) and an unknown-node batch: the
        // prefix of a failing batch stays applied in every lane.
        let trace = "add-edge temp A1 A5\nquery analyze 16 1\n\
                     add-edge temp A2 A6\nadd-edge temp A9 A1\n\
                     query analyze 16 1\nadd-edge data nope A5\nquery timing\n";
        let report = run_trace_differential(&write_cdfg(&g), trace).unwrap();
        assert!(report.mismatches.is_empty(), "{:?}", report.mismatches);
        assert_eq!(report.error_responses, 2, "both bad batches covered");
    }

    #[test]
    fn named_layered_round_trips_and_traces() {
        let g = named_layered(120, 4, 10, 9);
        let text = write_cdfg(&g);
        let back = localwm_cdfg::parse_cdfg(&text).expect("round trip");
        assert_eq!(back.node_count(), g.node_count());
        let trace = seeded_trace(
            &g,
            &TraceSpec {
                seed: 5,
                edit_steps: 3,
                edits_per_step: 2,
                samples: 8,
            },
        )
        .unwrap();
        let steps = parse_trace(&trace).unwrap();
        let lines = replay_incremental(&text, &steps, "t").unwrap();
        assert!(lines.iter().all(|l| l.contains("\"ok\":true")), "{lines:?}");
    }
}
