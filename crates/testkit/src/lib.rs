//! `localwm-testkit`: the deterministic verification layer for the engine
//! and service crates.
//!
//! Three instruments, all seeded and reproducible:
//!
//! * [`stream`] — seeded request streams mixing every request kind with
//!   typed-error cases; the same seed always yields the same byte-exact
//!   stream.
//! * [`oracle`] — differential oracles: the same stream runs through the
//!   in-process API, a real TCP server (cold and then warm cache), and
//!   serial vs threaded engine passes, and every lane must produce
//!   byte-identical response lines. Also probe-level invariants (memo
//!   builders run exactly once, no spurious invalidations).
//! * [`corpus`] — the golden conformance corpus: committed CDFG designs
//!   under `corpus/designs/` with expected service responses under
//!   `corpus/golden/`, a drift checker, and a `--bless` regenerator
//!   (`cargo run -p localwm-testkit --bin conformance`).
//! * [`chaos`] — a chaos harness that starts a live server with a seeded
//!   [`FaultPlan`](localwm_serve::FaultPlan), replays a seeded stream
//!   through the injected faults, and checks service invariants (no lost
//!   responses beyond the fired faults, no double-acks, exact drain
//!   accounting, cache counter consistency). Same seed ⇒ same plan, same
//!   fired-fault trace, same report.
//! * [`trace`] — edit-trace replay: seeded interactive-session traces
//!   (edit batches + analysis queries) run through a held incremental
//!   session, a fresh-context-per-step scratch lane, and a real TCP
//!   session, all byte-compared — the oracle that pins the dirty-cone
//!   invalidation contract (incrementality changes cost, never bytes).
//! * [`cluster`] — the cluster harness: a `localwm-gateway` over N live
//!   backends, the gateway differential lane (gateway responses must be
//!   byte-identical to a single backend), the golden routing transcript
//!   (`corpus/gateway/transcript.json`), and gateway chaos (seeded
//!   backend kill/restart; every accepted request gets exactly one
//!   response or one typed error, never a silent drop).
//! * [`contention`] — the contention harness: N client threads hammering
//!   one live server (all on one cache shard, or spread across shards),
//!   byte-compared against the serial in-process reference, with the
//!   sharded cache's counter accounting checked against a pure placement
//!   oracle.
//!
//! Built with the `fault-inject` feature (the default) the chaos runs fire
//! real faults; without it the same harness runs fault-free and asserts
//! the zero-fault invariants, so both feature configurations are testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod cluster;
pub mod contention;
pub mod corpus;
pub mod oracle;
pub mod stream;
pub mod trace;

pub use chaos::{ChaosConfig, ChaosOutcome};
pub use cluster::{ClusterConfig, ClusterHarness, GatewayChaosConfig, GatewayChaosOutcome};
pub use contention::{ContentionOutcome, ContentionSpec};

/// Whether this build of the testkit armed the `fault-inject` seams in
/// `localwm-serve` (callers like the CLI cannot see the feature flag of a
/// dependency through `cfg!`).
pub fn fault_inject_compiled() -> bool {
    cfg!(feature = "fault-inject")
}
pub use corpus::{CorpusCase, TraceCase};
pub use oracle::DifferentialReport;
pub use stream::StreamSpec;
pub use trace::{TraceReport, TraceSpec, TraceStep};
