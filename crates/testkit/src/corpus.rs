//! The golden conformance corpus.
//!
//! Layout (committed at the repository root):
//!
//! ```text
//! corpus/
//!   designs/<name>.cdfg   one design per file, canonical CDFG text
//!   golden/<name>.json    expected service responses for that design
//! ```
//!
//! Each golden file records, as pretty-printed JSON, the exact protocol
//! [`Response`] objects the service produces for a fixed request battery
//! against that design: `timing`, `analyze` (fixed samples/seed), `embed`
//! (fixed author), — when the embed succeeds — `detect` of the embedded
//! schedule, and the robustness kinds `attack` (one seeded budgeted
//! transformation) and `strength` (the full budget-sweep report). Designs
//! where embed fails (the serial Table II entries) commit the typed
//! `no_incomparable_pairs` error response instead — for the robustness
//! kinds too; typed errors are corpus content, not corpus failures.
//!
//! [`check`] recomputes every golden and diffs it against disk; [`bless`]
//! rewrites designs and goldens (the `--bless` flag of the `conformance`
//! binary). Drift output is line-oriented so CI logs show exactly which
//! response field moved.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use localwm_cdfg::designs::{iir4_parallel, table2_design, table2_designs};
use localwm_cdfg::generators::{layered, mediabench, mediabench_apps, LayeredConfig};
use localwm_cdfg::write_cdfg;
use localwm_serve::handlers;
use localwm_serve::{ContextCache, Request, RequestKind, Response};
use serde::{Serialize, Value};

/// One corpus design: a name and its canonical CDFG text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusCase {
    /// File stem under `corpus/designs/`.
    pub name: String,
    /// Canonical CDFG text.
    pub design: String,
}

/// Author identity baked into every corpus embed/detect request.
pub const CORPUS_AUTHOR: &str = "corpus-author";

/// The built-in corpus definition, sorted by name. [`bless`] writes these
/// to disk; [`check`] flags disk designs that drift from them.
pub fn builtin_cases() -> Vec<CorpusCase> {
    let mut cases = vec![
        CorpusCase {
            name: "iir4".to_owned(),
            design: write_cdfg(&iir4_parallel()),
        },
        CorpusCase {
            name: "cf-iir-serial".to_owned(),
            design: write_cdfg(&table2_design(&table2_designs()[0])),
        },
        CorpusCase {
            name: "ge-controller".to_owned(),
            design: write_cdfg(&table2_design(&table2_designs()[1])),
        },
        CorpusCase {
            name: "layered-120".to_owned(),
            design: write_cdfg(&layered(&LayeredConfig {
                ops: 120,
                layers: 12,
                seed: 42,
                ..LayeredConfig::default()
            })),
        },
        CorpusCase {
            name: "layered-240".to_owned(),
            design: write_cdfg(&layered(&LayeredConfig {
                ops: 240,
                layers: 16,
                seed: 7,
                ..LayeredConfig::default()
            })),
        },
        CorpusCase {
            name: "mediabench-0".to_owned(),
            design: write_cdfg(&mediabench(&mediabench_apps()[0], 0)),
        },
    ];
    cases.sort_by(|a, b| a.name.cmp(&b.name));
    cases
}

/// The committed corpus directory: `<repo root>/corpus`.
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

/// The fixed request battery for one design. Request ids are local to the
/// battery (0-based); [`corpus_requests`] renumbers them stream-wide.
pub fn case_requests(case: &CorpusCase) -> Vec<Request> {
    let with_design = |kind| {
        let mut r = Request::new(kind);
        r.design = Some(case.design.clone());
        r
    };
    let timing = with_design(RequestKind::Timing);
    let mut analyze = with_design(RequestKind::Analyze);
    analyze.samples = Some(40);
    analyze.seed = Some(0);
    let mut embed = with_design(RequestKind::Embed);
    embed.author = Some(CORPUS_AUTHOR.to_owned());
    let mut reqs = vec![timing, analyze, embed.clone()];
    // Detect rides along only when the embed succeeds; on serial designs
    // the battery ends at the typed embed error.
    let cache = ContextCache::new(1);
    if let Ok(out) = handlers::execute(&cache, &embed) {
        if let Some(Value::Str(schedule)) = out.field("schedule") {
            let mut detect = with_design(RequestKind::Detect);
            detect.author = Some(CORPUS_AUTHOR.to_owned());
            detect.schedule = Some(schedule.clone());
            reqs.push(detect);
        }
    }
    // Robustness kinds run unconditionally: on serial designs they commit
    // their typed `no_incomparable_pairs` errors as corpus content.
    let mut attack = with_design(RequestKind::Attack);
    attack.author = Some(CORPUS_AUTHOR.to_owned());
    attack.fraction = Some(0.25);
    attack.attack = Some("rewire".to_owned());
    attack.budget = Some(0.2);
    attack.seed = Some(7);
    reqs.push(attack);
    let mut strength = with_design(RequestKind::Strength);
    strength.author = Some(CORPUS_AUTHOR.to_owned());
    strength.fraction = Some(0.25);
    strength.budgets = Some("0,0.15,0.45".to_owned());
    strength.seed = Some(7);
    reqs.push(strength);
    for (i, r) in reqs.iter_mut().enumerate() {
        r.id = Some(i as u64);
    }
    reqs
}

/// Typed-error requests appended to the corpus stream so the differential
/// lanes and goldens cover error responses, not just successes.
pub fn error_requests() -> Vec<Request> {
    let iir4 = write_cdfg(&iir4_parallel());
    let mut missing_design = Request::new(RequestKind::Timing);
    missing_design.id = Some(0);
    let mut bad_design = Request::new(RequestKind::Timing);
    bad_design.design = Some("node a definitely_not_an_op\n".to_owned());
    let mut bad_bounds = Request::new(RequestKind::Analyze);
    bad_bounds.design = Some(iir4.clone());
    bad_bounds.lo = Some(9);
    bad_bounds.hi = Some(3);
    let mut bad_schedule = Request::new(RequestKind::Detect);
    bad_schedule.design = Some(iir4);
    bad_schedule.author = Some(CORPUS_AUTHOR.to_owned());
    bad_schedule.schedule = Some("not a schedule".to_owned());
    let mut missing_author = Request::new(RequestKind::Embed);
    missing_author.design = Some(write_cdfg(&iir4_parallel()));
    vec![
        missing_design,
        bad_design,
        bad_bounds,
        bad_schedule,
        missing_author,
    ]
}

/// The full corpus request stream — every case battery plus the typed-error
/// battery, with globally sequential ids. This is the stream the
/// differential oracle runs through every lane.
pub fn corpus_requests(cases: &[CorpusCase]) -> Vec<Request> {
    let mut all: Vec<Request> = cases.iter().flat_map(case_requests).collect();
    all.extend(error_requests());
    for (i, r) in all.iter_mut().enumerate() {
        r.id = Some(i as u64);
    }
    all
}

/// Computes the golden value for one case: the exact responses of its
/// request battery against a fresh cache.
pub fn golden_value(case: &CorpusCase) -> Value {
    let cache = ContextCache::new(2);
    let responses: Vec<Value> = case_requests(case)
        .iter()
        .map(|req| {
            let resp = match handlers::execute(&cache, req) {
                Ok(v) => Response::success(req.id, req.kind.as_str(), v),
                Err(e) => Response::failure(req.id, req.kind.as_str(), e),
            };
            resp.to_value()
        })
        .collect();
    serde::object(vec![
        ("design", Value::Str(case.name.clone())),
        ("responses", Value::Array(responses)),
    ])
}

/// The golden file text for one case (pretty JSON, trailing newline).
pub fn golden_text(case: &CorpusCase) -> String {
    let mut s = serde_json::to_string_pretty(&golden_value(case)).expect("goldens serialize");
    s.push('\n');
    s
}

/// One golden edit-trace case: a starting design, the trace text, and
/// (on disk) the expected per-step responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCase {
    /// File stem under `corpus/traces/`.
    pub name: String,
    /// Starting design (canonical CDFG text).
    pub design: String,
    /// Trace text (edit batches + queries; see [`crate::trace`]).
    pub trace: String,
}

/// The built-in golden traces: a seeded churn trace and a hand-written
/// one that crosses typed-error steps (bad edits are corpus content).
pub fn builtin_traces() -> Vec<TraceCase> {
    let iir4 = write_cdfg(&iir4_parallel());
    let seeded = crate::trace::seeded_trace(
        &iir4_parallel(),
        &crate::trace::TraceSpec {
            seed: 11,
            edit_steps: 5,
            edits_per_step: 2,
            samples: 24,
        },
    )
    .expect("iir4 is traceable");
    vec![
        TraceCase {
            name: "iir4-churn".to_owned(),
            design: iir4.clone(),
            trace: seeded,
        },
        TraceCase {
            name: "iir4-errors".to_owned(),
            design: iir4,
            trace: "add-edge temp A1 A5\nquery analyze 24 7\n\
                    add-edge temp A2 A6\nadd-edge temp A9 A1\n\
                    query analyze 24 7\nadd-edge data nope A5\nquery timing\n"
                .to_owned(),
        },
    ]
}

/// The golden file text for one trace case: the incremental lane's exact
/// per-step response lines (the scratch and TCP lanes must match these
/// byte for byte — the oracle asserts that; the golden pins them in time).
///
/// # Panics
///
/// Panics if the built-in design stops parsing (an engine regression).
pub fn trace_golden_text(case: &TraceCase) -> String {
    let steps = crate::trace::parse_trace(&case.trace).expect("builtin trace parses");
    let lines = crate::trace::replay_incremental(&case.design, &steps, "trace")
        .expect("builtin design parses");
    let mut s = lines.join("\n");
    s.push('\n');
    s
}

/// Diffs the committed trace corpus (`corpus/traces/<name>.trace` +
/// `<name>.golden.jsonl`) against the built-ins.
///
/// # Errors
///
/// Propagates I/O errors other than missing files (reported as drift).
pub fn check_traces(dir: &Path) -> io::Result<Vec<Drift>> {
    let mut drifts = Vec::new();
    for case in builtin_traces() {
        let trace_path = dir.join("traces").join(format!("{}.trace", case.name));
        match fs::read_to_string(&trace_path) {
            Ok(on_disk) if on_disk == case.trace => {}
            Ok(on_disk) => drifts.push(Drift {
                name: case.name.clone(),
                kind: "trace-drift",
                diff: line_diff(&case.trace, &on_disk, 5),
            }),
            Err(e) if e.kind() == io::ErrorKind::NotFound => drifts.push(Drift {
                name: case.name.clone(),
                kind: "missing-trace",
                diff: String::new(),
            }),
            Err(e) => return Err(e),
        }
        let golden_path = dir
            .join("traces")
            .join(format!("{}.golden.jsonl", case.name));
        let expected = trace_golden_text(&case);
        match fs::read_to_string(&golden_path) {
            Ok(on_disk) if on_disk == expected => {}
            Ok(on_disk) => drifts.push(Drift {
                name: case.name.clone(),
                kind: "trace-golden-drift",
                diff: line_diff(&expected, &on_disk, 8),
            }),
            Err(e) if e.kind() == io::ErrorKind::NotFound => drifts.push(Drift {
                name: case.name.clone(),
                kind: "missing-trace-golden",
                diff: String::new(),
            }),
            Err(e) => return Err(e),
        }
    }
    Ok(drifts)
}

/// Writes the trace corpus under `dir` (the `--bless` mode).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn bless_traces(dir: &Path) -> io::Result<Vec<String>> {
    fs::create_dir_all(dir.join("traces"))?;
    let mut written = Vec::new();
    for case in builtin_traces() {
        fs::write(
            dir.join("traces").join(format!("{}.trace", case.name)),
            &case.trace,
        )?;
        fs::write(
            dir.join("traces")
                .join(format!("{}.golden.jsonl", case.name)),
            trace_golden_text(&case),
        )?;
        written.push(case.name);
    }
    Ok(written)
}

/// One detected divergence between the computed corpus and disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Drift {
    /// Case name (or file stem for orphans).
    pub name: String,
    /// What drifted: `missing-design`, `design-drift`, `missing-golden`,
    /// `golden-drift`, or `orphan`.
    pub kind: &'static str,
    /// Line-oriented diff excerpt (empty for missing/orphan files).
    pub diff: String,
}

impl fmt::Display for Drift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.name)?;
        if !self.diff.is_empty() {
            write!(f, "\n{}", self.diff)?;
        }
        Ok(())
    }
}

/// First differing lines between two texts, `-` expected / `+` actual.
pub(crate) fn line_diff(expected: &str, actual: &str, max_lines: usize) -> String {
    let mut out = Vec::new();
    let e: Vec<&str> = expected.lines().collect();
    let a: Vec<&str> = actual.lines().collect();
    for i in 0..e.len().max(a.len()) {
        let (le, la) = (e.get(i), a.get(i));
        if le != la {
            out.push(format!(
                "  line {}:\n  - {}\n  + {}",
                i + 1,
                le.unwrap_or(&"<eof>"),
                la.unwrap_or(&"<eof>")
            ));
            if out.len() >= max_lines {
                out.push("  ... (diff truncated)".to_owned());
                break;
            }
        }
    }
    out.join("\n")
}

/// Loads the committed designs (`corpus/designs/*.cdfg`), sorted by name.
///
/// # Errors
///
/// Propagates I/O errors; a missing directory is an error (run
/// `conformance --bless` once to create the corpus).
pub fn load_cases(dir: &Path) -> io::Result<Vec<CorpusCase>> {
    let designs = dir.join("designs");
    let mut cases = Vec::new();
    for entry in fs::read_dir(&designs)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("cdfg") {
            continue;
        }
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default()
            .to_owned();
        cases.push(CorpusCase {
            name,
            design: fs::read_to_string(&path)?,
        });
    }
    cases.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(cases)
}

/// Recomputes every builtin case and diffs designs and goldens against
/// `dir`. Returns the drift list (empty means the corpus is clean).
///
/// # Errors
///
/// Propagates I/O errors other than missing files (which are reported as
/// drift, not errors).
pub fn check(dir: &Path) -> io::Result<Vec<Drift>> {
    let mut drifts = Vec::new();
    let cases = builtin_cases();
    for case in &cases {
        let design_path = dir.join("designs").join(format!("{}.cdfg", case.name));
        match fs::read_to_string(&design_path) {
            Ok(on_disk) if on_disk == case.design => {}
            Ok(on_disk) => drifts.push(Drift {
                name: case.name.clone(),
                kind: "design-drift",
                diff: line_diff(&case.design, &on_disk, 5),
            }),
            Err(e) if e.kind() == io::ErrorKind::NotFound => drifts.push(Drift {
                name: case.name.clone(),
                kind: "missing-design",
                diff: String::new(),
            }),
            Err(e) => return Err(e),
        }
        let golden_path = dir.join("golden").join(format!("{}.json", case.name));
        let expected = golden_text(case);
        match fs::read_to_string(&golden_path) {
            Ok(on_disk) if on_disk == expected => {}
            Ok(on_disk) => drifts.push(Drift {
                name: case.name.clone(),
                kind: "golden-drift",
                diff: line_diff(&expected, &on_disk, 8),
            }),
            Err(e) if e.kind() == io::ErrorKind::NotFound => drifts.push(Drift {
                name: case.name.clone(),
                kind: "missing-golden",
                diff: String::new(),
            }),
            Err(e) => return Err(e),
        }
    }
    // Orphans: committed files no builtin case produces anymore.
    for (sub, ext) in [("designs", "cdfg"), ("golden", "json")] {
        let path = dir.join(sub);
        let entries = match fs::read_dir(&path) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        for entry in entries {
            let p = entry?.path();
            if p.extension().and_then(|e| e.to_str()) != Some(ext) {
                continue;
            }
            let stem = p
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or_default()
                .to_owned();
            if !cases.iter().any(|c| c.name == stem) {
                drifts.push(Drift {
                    name: format!("{sub}/{stem}.{ext}"),
                    kind: "orphan",
                    diff: String::new(),
                });
            }
        }
    }
    drifts.sort_by(|a, b| (a.kind, &a.name).cmp(&(b.kind, &b.name)));
    Ok(drifts)
}

/// Regenerates the whole corpus under `dir` (designs and goldens); the
/// `--bless` mode. Returns the written case names.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn bless(dir: &Path) -> io::Result<Vec<String>> {
    fs::create_dir_all(dir.join("designs"))?;
    fs::create_dir_all(dir.join("golden"))?;
    let mut written = Vec::new();
    for case in builtin_cases() {
        fs::write(
            dir.join("designs").join(format!("{}.cdfg", case.name)),
            &case.design,
        )?;
        fs::write(
            dir.join("golden").join(format!("{}.json", case.name)),
            golden_text(&case),
        )?;
        written.push(case.name);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_cases_are_sorted_and_named_uniquely() {
        let cases = builtin_cases();
        assert!(cases.len() >= 5, "corpus has real breadth");
        let names: Vec<&str> = cases.iter().map(|c| c.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted);
    }

    #[test]
    fn goldens_are_deterministic() {
        let case = &builtin_cases()[0];
        assert_eq!(golden_text(case), golden_text(case));
    }

    #[test]
    fn corpus_stream_has_sequential_ids_and_error_cases() {
        let reqs = corpus_requests(&builtin_cases());
        let ids: Vec<u64> = reqs.iter().map(|r| r.id.expect("id")).collect();
        assert_eq!(ids, (0..reqs.len() as u64).collect::<Vec<u64>>());
        assert!(reqs.iter().any(|r| r.design.is_none()));
    }

    #[test]
    fn line_diff_pinpoints_the_divergence() {
        let d = line_diff("a\nb\nc", "a\nX\nc", 5);
        assert!(d.contains("line 2"), "{d}");
        assert!(d.contains("- b") && d.contains("+ X"), "{d}");
    }
}
