//! The cluster harness: a gateway plus N live backends, in-process.
//!
//! Three instruments, mirroring the single-backend testkit:
//!
//! * [`ClusterHarness`] — starts N `localwm-serve` backends and a
//!   `localwm-gateway` over them on loopback sockets, with stable backend
//!   names (`b0`, `b1`, …) so rendezvous routing is deterministic across
//!   runs regardless of the ephemeral ports. Backends can be killed and
//!   restarted (on a fresh port) mid-run.
//! * The **gateway differential lane** ([`gateway_lines`] /
//!   [`gateway_binary_lines`] / [`run_gateway_differential`]) — the full
//!   corpus request stream runs through a gateway-fronted cluster, once
//!   over JSON lines and once over the `LWMB1` framed binary encoding,
//!   and every lane must produce response lines byte-identical to the
//!   in-process reference, typed errors included.
//! * The **golden gateway transcript** ([`check_transcript`] /
//!   [`bless_transcript`]) — the deterministic routing trace (shard key,
//!   chosen backend, attempts, failovers) of the corpus stream over a
//!   2-backend cluster, committed at `corpus/gateway/transcript.json` and
//!   drift-checked like the response goldens.
//! * **Gateway chaos** ([`run_gateway_chaos`]) — a seeded backend
//!   kill/restart schedule replayed against a live cluster; the invariant
//!   is *zero silent drops*: every accepted request gets exactly one
//!   response or one typed error. Same seed ⇒ same schedule, same routing
//!   trace, same report (no wall-clock quantities).
//!
//! Gateway chaos needs no `fault-inject` feature: the faults are real
//! process-level backend deaths, not injected seams.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;
use std::time::Duration;

use localwm_gateway::{BackendSpec, GatewayConfig, GatewayHandle, RouteRecord};
use localwm_serve::fault::SplitMix64;
use localwm_serve::{Client, Request, Response, ServeConfig, ServerHandle};
use serde::{Serialize, Value};

use crate::corpus::{self, Drift};
use crate::oracle::{inproc_lines, DifferentialReport, Mismatch};
use crate::stream::{seeded_stream, StreamSpec};

/// Knobs for a [`ClusterHarness`]. Deterministic by construction: backend
/// names are fixed, probing is off, and backoff sleeps are zero so retry
/// counts depend only on routing decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of backends (`b0` … `b{n-1}`).
    pub backends: usize,
    /// Gateway replica-group size per shard.
    pub replicas: usize,
    /// Worker threads per backend (keep at 1 for exact accounting).
    pub workers: usize,
    /// Same-backend retries after a failed attempt.
    pub max_retries: u32,
    /// Client/gateway read timeout.
    pub recv_timeout: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            backends: 2,
            replicas: 2,
            workers: 1,
            max_retries: 1,
            recv_timeout: Duration::from_secs(10),
        }
    }
}

/// A gateway plus its backend fleet, all in-process on loopback sockets.
pub struct ClusterHarness {
    cfg: ClusterConfig,
    backends: Vec<Option<ServerHandle>>,
    gateway: Option<GatewayHandle>,
}

impl ClusterHarness {
    /// Starts `cfg.backends` backends and a gateway routing over them.
    ///
    /// # Errors
    ///
    /// Returns a message on bind failures.
    pub fn start(cfg: ClusterConfig) -> Result<Self, String> {
        let mut backends = Vec::with_capacity(cfg.backends);
        let mut specs = Vec::with_capacity(cfg.backends);
        for i in 0..cfg.backends {
            let handle = start_backend(cfg.workers)?;
            specs.push(BackendSpec {
                name: format!("b{i}"),
                addr: handle.addr().to_string(),
            });
            backends.push(Some(handle));
        }
        let gateway = localwm_gateway::start(GatewayConfig {
            addr: "127.0.0.1:0".to_owned(),
            backends: specs,
            replicas: cfg.replicas,
            max_retries: cfg.max_retries,
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
            recv_timeout_ms: u64::try_from(cfg.recv_timeout.as_millis()).unwrap_or(10_000),
            health_interval_ms: None,
            record_routes: true,
        })
        .map_err(|e| format!("start gateway: {e}"))?;
        Ok(ClusterHarness {
            cfg,
            backends,
            gateway: Some(gateway),
        })
    }

    fn gateway(&self) -> &GatewayHandle {
        self.gateway.as_ref().expect("gateway running")
    }

    /// The gateway's bound address.
    pub fn gateway_addr(&self) -> String {
        self.gateway().addr().to_string()
    }

    /// A fresh client connected to the gateway, read timeout applied.
    ///
    /// # Errors
    ///
    /// Returns a message on connect failures.
    pub fn client(&self) -> Result<Client, String> {
        let c = Client::connect_within(&self.gateway_addr(), Duration::from_secs(5))
            .map_err(|e| format!("connect gateway: {e}"))?;
        c.set_read_timeout(Some(self.cfg.recv_timeout))
            .map_err(|e| format!("set timeout: {e}"))?;
        Ok(c)
    }

    /// [`ClusterHarness::client`], but the connection negotiates the
    /// `LWMB1` framed binary encoding with the gateway's client edge
    /// (backend pools stay JSON-lines either way).
    ///
    /// # Errors
    ///
    /// Returns a message on connect failures.
    pub fn binary_client(&self) -> Result<Client, String> {
        let c = Client::connect_binary_within(&self.gateway_addr(), Duration::from_secs(5))
            .map_err(|e| format!("connect gateway (binary): {e}"))?;
        c.set_read_timeout(Some(self.cfg.recv_timeout))
            .map_err(|e| format!("set timeout: {e}"))?;
        Ok(c)
    }

    /// Kills backend `i` with a drained shutdown (its queued work
    /// completes first, like a polite process death). The gateway keeps
    /// the dead entry and fails over per its state machine.
    ///
    /// # Errors
    ///
    /// Returns a message if the backend is already dead.
    pub fn kill_backend(&mut self, i: usize) -> Result<(), String> {
        match self.backends.get_mut(i).and_then(Option::take) {
            Some(handle) => {
                handle.shutdown();
                Ok(())
            }
            None => Err(format!("backend b{i} is not running")),
        }
    }

    /// Restarts backend `i` as a fresh process image on a new port and
    /// repoints the gateway's `b{i}` entry. The shard identity (the name)
    /// is unchanged, so routing assignments do not move.
    ///
    /// # Errors
    ///
    /// Returns a message if the backend is still running or won't bind.
    pub fn restart_backend(&mut self, i: usize) -> Result<(), String> {
        let slot = self
            .backends
            .get_mut(i)
            .ok_or_else(|| format!("no backend b{i}"))?;
        if slot.is_some() {
            return Err(format!("backend b{i} is still running"));
        }
        let handle = start_backend(self.cfg.workers)?;
        let addr = handle.addr().to_string();
        *slot = Some(handle);
        if !self.gateway().update_backend_addr(&format!("b{i}"), &addr) {
            return Err(format!("gateway does not know backend b{i}"));
        }
        Ok(())
    }

    /// The gateway's recorded routing trace so far.
    pub fn routing_trace(&self) -> Vec<RouteRecord> {
        self.gateway().routing_trace()
    }

    /// Shuts the gateway down first, then every still-running backend.
    pub fn shutdown(mut self) {
        if let Some(gw) = self.gateway.take() {
            gw.shutdown();
        }
        for b in self.backends.iter_mut().filter_map(Option::take) {
            b.shutdown();
        }
    }
}

fn start_backend(workers: usize) -> Result<ServerHandle, String> {
    localwm_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_depth: 64,
        cache_cap: 8,
        default_timeout_ms: None,
        metrics_out: None,
        fault_plan: None,
        session_idle_ms: None,
        store_dir: None,
        pipeline_window: localwm_serve::server::DEFAULT_PIPELINE_WINDOW,
    })
    .map_err(|e| format!("start backend: {e}"))
}

/// Runs `requests` through a gateway-fronted cluster over one sequential
/// connection, returning the raw response lines.
///
/// # Errors
///
/// Returns a message on socket failures.
pub fn gateway_lines(requests: &[Request], cfg: ClusterConfig) -> Result<Vec<String>, String> {
    gateway_lines_with(requests, cfg, false)
}

/// [`gateway_lines`] over a connection that negotiated the `LWMB1` framed
/// binary encoding at the gateway's client edge. The returned lines are
/// the client's decode of each frame; comparing them against the JSON
/// lanes proves the gateway relays byte-identical response objects in
/// both encodings.
///
/// # Errors
///
/// Returns a message on socket failures.
pub fn gateway_binary_lines(
    requests: &[Request],
    cfg: ClusterConfig,
) -> Result<Vec<String>, String> {
    gateway_lines_with(requests, cfg, true)
}

fn gateway_lines_with(
    requests: &[Request],
    cfg: ClusterConfig,
    binary: bool,
) -> Result<Vec<String>, String> {
    let harness = ClusterHarness::start(cfg)?;
    let mut client = if binary {
        harness.binary_client()?
    } else {
        harness.client()?
    };
    let mut lines = Vec::with_capacity(requests.len());
    for req in requests {
        client.send(req).map_err(|e| format!("send: {e}"))?;
        lines.push(client.recv_line().map_err(|e| format!("recv: {e}"))?);
    }
    harness.shutdown();
    Ok(lines)
}

/// The gateway differential oracle: `requests` through clusters of each
/// size in `backend_counts` must match the in-process serial reference
/// byte for byte — a gateway in front of N backends is observationally a
/// single backend.
///
/// # Errors
///
/// Returns a message if a cluster lane cannot run at all (byte
/// disagreements land in the report, not the error).
pub fn run_gateway_differential(
    requests: &[Request],
    backend_counts: &[usize],
) -> Result<DifferentialReport, String> {
    let reference = inproc_lines(requests, 8, localwm_engine::Parallelism::Serial);
    let mut lanes: Vec<(String, Vec<String>)> = Vec::new();
    for &n in backend_counts {
        let cfg = ClusterConfig {
            backends: n,
            replicas: n.min(2),
            ..ClusterConfig::default()
        };
        lanes.push((format!("gateway-{n}"), gateway_lines(requests, cfg)?));
        lanes.push((
            format!("gateway-{n}-binary"),
            gateway_binary_lines(requests, cfg)?,
        ));
    }
    let mut mismatches = Vec::new();
    for (lane, lines) in &lanes {
        for (i, (want, got)) in reference.iter().zip(lines).enumerate() {
            if want != got {
                mismatches.push(Mismatch {
                    lane: lane.clone(),
                    index: i,
                    id: requests[i].id,
                    want: want.clone(),
                    got: got.clone(),
                });
            }
        }
        if lines.len() != reference.len() {
            mismatches.push(Mismatch {
                lane: lane.clone(),
                index: reference.len().min(lines.len()),
                id: None,
                want: format!("{} lines", reference.len()),
                got: format!("{} lines", lines.len()),
            });
        }
    }
    let mut names = vec!["inproc-serial".to_owned()];
    names.extend(lanes.iter().map(|(n, _)| n.clone()));
    Ok(DifferentialReport {
        lanes: names,
        requests: requests.len(),
        error_responses: reference
            .iter()
            .filter(|l| l.contains("\"ok\":false"))
            .count(),
        mismatches,
    })
}

// ---- Golden gateway transcript ----

/// Computes the golden routing transcript: the corpus request stream over
/// a fresh 2-backend cluster, as a JSON object. Deterministic because
/// shard keys are content hashes and rendezvous ranks backend *names*.
///
/// # Errors
///
/// Returns a message on socket failures.
pub fn transcript_value() -> Result<Value, String> {
    let cfg = ClusterConfig::default();
    let harness = ClusterHarness::start(cfg)?;
    let requests = corpus::corpus_requests(&corpus::builtin_cases());
    let mut client = harness.client()?;
    for req in &requests {
        client.send(req).map_err(|e| format!("send: {e}"))?;
        client.recv_line().map_err(|e| format!("recv: {e}"))?;
    }
    let trace = harness.routing_trace();
    harness.shutdown();
    let mut by_backend: BTreeMap<String, u64> = BTreeMap::new();
    for r in &trace {
        let name = r.backend.clone().unwrap_or_else(|| "<none>".to_owned());
        *by_backend.entry(name).or_insert(0) += 1;
    }
    Ok(serde::object(vec![
        (
            "backends",
            Value::Array(vec![
                Value::Str("b0".to_owned()),
                Value::Str("b1".to_owned()),
            ]),
        ),
        ("replicas", cfg.replicas.to_value()),
        ("requests", requests.len().to_value()),
        (
            "routed_by_backend",
            Value::Object(
                by_backend
                    .into_iter()
                    .map(|(k, v)| (k, v.to_value()))
                    .collect(),
            ),
        ),
        (
            "routes",
            Value::Array(trace.iter().map(RouteRecord::to_value).collect()),
        ),
    ]))
}

/// The transcript file text (pretty JSON, trailing newline).
///
/// # Errors
///
/// Propagates [`transcript_value`] errors.
pub fn transcript_text() -> Result<String, String> {
    let mut s = serde_json::to_string_pretty(&transcript_value()?).expect("transcript serializes");
    s.push('\n');
    Ok(s)
}

/// Where the transcript lives under a corpus dir.
fn transcript_path(dir: &Path) -> std::path::PathBuf {
    dir.join("gateway").join("transcript.json")
}

/// Recomputes the transcript and diffs it against the committed file.
/// Returns drift findings (empty = clean), in the same shape as the
/// response-golden checker.
///
/// # Errors
///
/// Returns a message for harness failures or non-NotFound I/O errors.
pub fn check_transcript(dir: &Path) -> Result<Vec<Drift>, String> {
    let expected = transcript_text()?;
    match fs::read_to_string(transcript_path(dir)) {
        Ok(on_disk) if on_disk == expected => Ok(Vec::new()),
        Ok(on_disk) => Ok(vec![Drift {
            name: "gateway/transcript.json".to_owned(),
            kind: "transcript-drift",
            diff: corpus::line_diff(&expected, &on_disk, 8),
        }]),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(vec![Drift {
            name: "gateway/transcript.json".to_owned(),
            kind: "missing-transcript",
            diff: String::new(),
        }]),
        Err(e) => Err(format!("read transcript: {e}")),
    }
}

/// Regenerates the committed transcript (the `--bless` path).
///
/// # Errors
///
/// Returns a message for harness or write failures.
pub fn bless_transcript(dir: &Path) -> Result<(), String> {
    let text = transcript_text()?;
    let path = transcript_path(dir);
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).map_err(|e| format!("mkdir: {e}"))?;
    }
    fs::write(&path, text).map_err(|e| format!("write transcript: {e}"))
}

// ---- Gateway chaos ----

/// Knobs for one gateway chaos run. The kill/restart schedule is derived
/// from the seed; everything that affects behavior is explicit here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewayChaosConfig {
    /// Seed for the request stream and the kill/restart schedule.
    pub seed: u64,
    /// Stream length.
    pub requests: usize,
    /// Fleet size.
    pub backends: usize,
    /// Gateway replica-group size (`< backends` makes some shards lose
    /// all replicas when the victim dies — the typed-error path).
    pub replicas: usize,
    /// Whether a seeded backend kill happens mid-stream.
    pub kill: bool,
    /// Whether the victim restarts (on a new port) later in the stream.
    pub restart: bool,
    /// Client read timeout — a response slower than this counts as a
    /// silent drop.
    pub recv_timeout: Duration,
}

impl Default for GatewayChaosConfig {
    fn default() -> Self {
        GatewayChaosConfig {
            seed: 1,
            requests: 32,
            backends: 2,
            replicas: 2,
            kill: true,
            restart: true,
            recv_timeout: Duration::from_secs(10),
        }
    }
}

/// Everything a gateway chaos run produces.
#[derive(Debug, Clone)]
pub struct GatewayChaosOutcome {
    /// Invariant violations (empty = healthy run).
    pub violations: Vec<String>,
    /// The gateway's routing trace for the run.
    pub trace: Vec<RouteRecord>,
    /// The full deterministic report (carries `violations` too; contains
    /// no wall-clock quantities).
    pub report: Value,
}

/// Runs one seeded gateway chaos scenario: a request stream over a live
/// cluster with a mid-stream backend kill (and optional restart), driven
/// sequentially so the routing trace is a pure function of the seed.
///
/// The invariant under test: **every accepted request gets exactly one
/// response — a success or a typed error — never a silent drop.** With
/// `replicas == backends` no typed `upstream_unavailable` may appear
/// either (some replica always covers the shard); with fewer replicas the
/// error is expected for shards whose whole replica group died, and the
/// report counts them.
///
/// # Errors
///
/// Returns a message only for harness-level failures (cannot bind or
/// connect) — invariant violations land in the outcome.
pub fn run_gateway_chaos(cfg: &GatewayChaosConfig) -> Result<GatewayChaosOutcome, String> {
    let requests = seeded_stream(&StreamSpec {
        seed: cfg.seed,
        requests: cfg.requests,
    });
    // Seeded schedule: kill in the middle half of the stream, restart a
    // quarter-stream later (clamped inside the stream).
    let mut rng = SplitMix64::new(cfg.seed ^ 0xC1A0_5C1A_05C1_A05C);
    let quarter = (cfg.requests / 4).max(1) as u64;
    let kill_index = usize::try_from(quarter + rng.below(2 * quarter)).expect("fits");
    let victim = usize::try_from(rng.below(cfg.backends as u64)).expect("fits");
    let restart_index =
        (kill_index + usize::try_from(quarter).expect("fits")).min(cfg.requests.saturating_sub(1));

    let mut harness = ClusterHarness::start(ClusterConfig {
        backends: cfg.backends,
        replicas: cfg.replicas,
        recv_timeout: cfg.recv_timeout,
        ..ClusterConfig::default()
    })?;
    let mut client = harness.client()?;

    let mut fates: Vec<(u64, String)> = Vec::with_capacity(requests.len());
    let mut violations: Vec<String> = Vec::new();
    let mut killed = false;
    let mut restarted = false;

    for (i, req) in requests.iter().enumerate() {
        if cfg.kill && i == kill_index {
            harness.kill_backend(victim)?;
            killed = true;
        }
        if cfg.kill && cfg.restart && killed && i == restart_index {
            harness.restart_backend(victim)?;
            restarted = true;
        }
        let id = req.id.expect("stream requests carry ids");
        if let Err(e) = client.send(req) {
            // The gateway itself never dies in this scenario; a dead
            // gateway socket is a harness failure, not backend chaos.
            return Err(format!("send to gateway failed at {i}: {e}"));
        }
        match client.recv() {
            Ok(resp) => {
                if resp.id != Some(id) {
                    violations.push(format!(
                        "request {i}: response id {:?} does not echo {id} \
                         (duplicate or misrouted ack)",
                        resp.id
                    ));
                }
                fates.push((id, classify(&resp)));
            }
            Err(e) => {
                violations.push(format!(
                    "request {i} (id {id}): SILENT DROP — no response ({e})"
                ));
                fates.push((id, "silent_drop".to_owned()));
            }
        }
    }
    let trace = harness.routing_trace();
    harness.shutdown();

    // ---- Invariants ----
    if trace.len() != requests.len() {
        violations.push(format!(
            "routing trace has {} records for {} requests",
            trace.len(),
            requests.len()
        ));
    }
    let unavailable = fates
        .iter()
        .filter(|(_, f)| f == "error:upstream_unavailable")
        .count();
    if cfg.replicas >= cfg.backends && unavailable > 0 {
        violations.push(format!(
            "{unavailable} upstream_unavailable with full replication \
             (every shard had a surviving replica)"
        ));
    }

    // ---- Deterministic report ----
    let mut by_fate: BTreeMap<String, u64> = BTreeMap::new();
    for (_, f) in &fates {
        *by_fate.entry(f.clone()).or_insert(0) += 1;
    }
    let mut by_backend: BTreeMap<String, u64> = BTreeMap::new();
    for r in &trace {
        let name = r.backend.clone().unwrap_or_else(|| "<none>".to_owned());
        *by_backend.entry(name).or_insert(0) += 1;
    }
    let report = serde::object(vec![
        ("seed", cfg.seed.to_value()),
        ("requests", cfg.requests.to_value()),
        ("backends", cfg.backends.to_value()),
        ("replicas", cfg.replicas.to_value()),
        ("kill", Value::Bool(cfg.kill)),
        ("kill_index", kill_index.to_value()),
        ("victim", Value::Str(format!("b{victim}"))),
        ("restarted", Value::Bool(restarted)),
        ("restart_index", restart_index.to_value()),
        (
            "fates",
            Value::Array(
                fates
                    .iter()
                    .map(|(id, f)| Value::Array(vec![id.to_value(), Value::Str(f.clone())]))
                    .collect(),
            ),
        ),
        (
            "fates_by_kind",
            Value::Object(
                by_fate
                    .into_iter()
                    .map(|(k, v)| (k, v.to_value()))
                    .collect(),
            ),
        ),
        (
            "routed_by_backend",
            Value::Object(
                by_backend
                    .into_iter()
                    .map(|(k, v)| (k, v.to_value()))
                    .collect(),
            ),
        ),
        (
            "total_failovers",
            trace.iter().map(|r| r.failovers).sum::<u64>().to_value(),
        ),
        (
            "total_attempts",
            trace.iter().map(|r| r.attempts).sum::<u64>().to_value(),
        ),
        (
            "routes",
            Value::Array(trace.iter().map(RouteRecord::to_value).collect()),
        ),
        (
            "violations",
            Value::Array(violations.iter().map(|v| Value::Str(v.clone())).collect()),
        ),
    ]);
    Ok(GatewayChaosOutcome {
        violations,
        trace,
        report,
    })
}

fn classify(resp: &Response) -> String {
    if resp.ok {
        "ok".to_owned()
    } else {
        match &resp.error {
            Some(e) => format!("error:{}", e.code.as_str()),
            None => "error:<untyped>".to_owned(),
        }
    }
}

/// Re-exported for assertions on chaos outcomes.
pub use localwm_serve::ErrorCode as GatewayErrorCode;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_round_trips_a_request_through_the_gateway() {
        let harness = ClusterHarness::start(ClusterConfig::default()).expect("cluster");
        let mut c = harness.client().expect("client");
        let mut req = Request::new(localwm_serve::RequestKind::Timing);
        req.id = Some(1);
        req.design = Some(localwm_cdfg::write_cdfg(
            &localwm_cdfg::designs::iir4_parallel(),
        ));
        let resp = c.call(&req).expect("call");
        assert!(resp.ok);
        assert_eq!(harness.routing_trace().len(), 1);
        harness.shutdown();
    }

    #[test]
    fn chaos_with_full_replication_never_surfaces_the_kill() {
        let out = run_gateway_chaos(&GatewayChaosConfig {
            seed: 11,
            requests: 16,
            ..GatewayChaosConfig::default()
        })
        .expect("chaos run");
        assert!(
            out.violations.is_empty(),
            "violations: {:?}",
            out.violations
        );
        assert_eq!(out.trace.len(), 16);
    }

    #[test]
    fn unused_error_code_reexport_is_the_protocol_type() {
        assert_eq!(
            GatewayErrorCode::UpstreamUnavailable.as_str(),
            "upstream_unavailable"
        );
    }
}
