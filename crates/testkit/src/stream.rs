//! Seeded request streams.
//!
//! [`seeded_stream`] expands a [`StreamSpec`] into a fully deterministic
//! sequence of protocol [`Request`]s: a mix of `timing`, `analyze`,
//! `embed`, and `detect` over a fixed design pool, salted with
//! typed-error cases (missing fields, malformed designs, inverted delay
//! bounds, unparseable schedules, unembeddable serial designs). The same
//! spec always produces the same byte-exact requests — the differential
//! oracle and the chaos harness both lean on that.

use localwm_cdfg::designs::{iir4_parallel, table2_design, table2_designs};
use localwm_cdfg::generators::{layered, mediabench, mediabench_apps, LayeredConfig};
use localwm_cdfg::write_cdfg;
use localwm_core::{SchedWmConfig, SchedulingWatermarker, Signature};
use localwm_engine::{DesignContext, Parallelism};
use localwm_sched::write_schedule;
use localwm_serve::fault::SplitMix64;
use localwm_serve::{Request, RequestKind};

/// Author identity used for the stream's valid detect requests.
pub const STREAM_AUTHOR: &str = "stream-author";

/// Shape of a seeded stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSpec {
    /// Seed for the request mix (kinds, designs, parameters).
    pub seed: u64,
    /// Number of requests to generate.
    pub requests: usize,
}

/// The fixed design pool a stream draws from: `(name, cdfg-text)`.
///
/// The pool deliberately includes one serial Table II design on which
/// `embed` fails with the typed `no_incomparable_pairs` error, so every
/// sufficiently long stream exercises that path.
pub fn design_pool() -> Vec<(&'static str, String)> {
    vec![
        ("iir4", write_cdfg(&iir4_parallel())),
        (
            "layered-120",
            write_cdfg(&layered(&LayeredConfig {
                ops: 120,
                layers: 12,
                seed: 42,
                ..LayeredConfig::default()
            })),
        ),
        (
            "mediabench-0",
            write_cdfg(&mediabench(&mediabench_apps()[0], 0)),
        ),
        (
            "ge-controller",
            write_cdfg(&table2_design(&table2_designs()[1])),
        ),
    ]
}

/// A watermarked iir4 schedule in the text format, embedded with
/// [`STREAM_AUTHOR`] — the payload for the stream's valid detect requests.
///
/// # Panics
///
/// Panics if the iir4 reference design stops being embeddable (that would
/// be an engine regression, not a caller error).
pub fn reference_schedule() -> String {
    let ctx = DesignContext::new(iir4_parallel());
    let sig = Signature::from_author(STREAM_AUTHOR);
    let wm = SchedulingWatermarker::new(SchedWmConfig::default());
    let emb = wm
        .embed_in(&ctx, &sig, Parallelism::Serial)
        .expect("iir4 is embeddable");
    write_schedule(ctx.graph(), &emb.schedule)
}

fn pick<'a>(rng: &mut SplitMix64, pool: &'a [(&'static str, String)]) -> &'a str {
    &pool[usize::try_from(rng.below(pool.len() as u64)).expect("pool fits")].1
}

/// Expands `spec` into its request stream. Deterministic: same spec, same
/// requests, byte for byte.
pub fn seeded_stream(spec: &StreamSpec) -> Vec<Request> {
    let pool = design_pool();
    let schedule = reference_schedule();
    let iir4 = &pool[0].1;
    let mut rng = SplitMix64::new(spec.seed ^ 0x5EED_57EA_4D00_57E4);
    let mut out = Vec::with_capacity(spec.requests);
    for i in 0..spec.requests {
        let roll = rng.below(100);
        let mut r = if roll < 30 {
            let mut r = Request::new(RequestKind::Timing);
            r.design = Some(pick(&mut rng, &pool).to_owned());
            r
        } else if roll < 55 {
            let mut r = Request::new(RequestKind::Analyze);
            r.design = Some(pick(&mut rng, &pool).to_owned());
            r.samples = Some(usize::try_from(10 + rng.below(40)).expect("small"));
            r.seed = Some(rng.below(1 << 16));
            r
        } else if roll < 70 {
            let mut r = Request::new(RequestKind::Embed);
            r.design = Some(pick(&mut rng, &pool).to_owned());
            r.author = Some(format!("author-{}", rng.below(3)));
            r
        } else if roll < 85 {
            let mut r = Request::new(RequestKind::Detect);
            r.design = Some(iir4.clone());
            r.author = Some(if rng.below(2) == 0 {
                STREAM_AUTHOR.to_owned()
            } else {
                "impostor".to_owned()
            });
            r.schedule = Some(schedule.clone());
            r
        } else {
            // Typed-error cases: each yields a deterministic bad_request.
            match rng.below(4) {
                0 => Request::new(RequestKind::Timing), // missing design
                1 => {
                    let mut r = Request::new(RequestKind::Timing);
                    r.design = Some("node a definitely_not_an_op\n".to_owned());
                    r
                }
                2 => {
                    let mut r = Request::new(RequestKind::Analyze);
                    r.design = Some(iir4.clone());
                    r.lo = Some(5);
                    r.hi = Some(2); // inverted bounds
                    r
                }
                _ => {
                    let mut r = Request::new(RequestKind::Detect);
                    r.design = Some(iir4.clone());
                    r.author = Some(STREAM_AUTHOR.to_owned());
                    r.schedule = Some("not a schedule".to_owned());
                    r
                }
            }
        };
        r.id = Some(i as u64);
        out.push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let spec = StreamSpec {
            seed: 9,
            requests: 40,
        };
        let a = seeded_stream(&spec);
        let b = seeded_stream(&spec);
        assert_eq!(a, b);
        let lines: Vec<String> = a.iter().map(Request::to_line).collect();
        let again: Vec<String> = b.iter().map(Request::to_line).collect();
        assert_eq!(lines, again, "byte-exact reproducibility");
    }

    #[test]
    fn different_seeds_differ() {
        let a = seeded_stream(&StreamSpec {
            seed: 1,
            requests: 40,
        });
        let b = seeded_stream(&StreamSpec {
            seed: 2,
            requests: 40,
        });
        assert_ne!(a, b);
    }

    #[test]
    fn stream_covers_queued_kinds_and_error_cases() {
        let reqs = seeded_stream(&StreamSpec {
            seed: 3,
            requests: 120,
        });
        for k in [
            RequestKind::Timing,
            RequestKind::Analyze,
            RequestKind::Embed,
            RequestKind::Detect,
        ] {
            assert!(reqs.iter().any(|r| r.kind == k), "stream covers {k}");
        }
        assert!(
            reqs.iter()
                .all(|r| r.kind != RequestKind::Stats && r.kind != RequestKind::Shutdown),
            "admin kinds never appear in the stream"
        );
        assert!(
            reqs.iter().any(|r| r.design.is_none()),
            "stream includes typed-error cases"
        );
        let ids: Vec<u64> = reqs.iter().map(|r| r.id.expect("id")).collect();
        assert_eq!(ids, (0..120).collect::<Vec<u64>>(), "sequential ids");
    }
}
