//! The chaos harness: a live server, a seeded fault plan, a seeded
//! request stream, and a set of service invariants checked afterwards.
//!
//! [`run`] starts a real server on a loopback socket with
//! `ServeConfig::fault_plan` set, replays a [`seeded_stream`] through it
//! over one sequential connection (reconnecting whenever a fault kills the
//! socket), and classifies every request's fate: answered, response
//! dropped, or connection died. It then cross-checks the observed
//! casualties against the injector's fired-fault trace:
//!
//! * **no lost responses** beyond the fired lossy faults (`drop_response`,
//!   `drop_connection`, `partial_write`) — and not one fewer, either;
//! * **no double-acks** — every request id is answered at most once;
//! * **exact drain accounting** — `shutdown` reports
//!   `drained_jobs == requests that reached dispatch`, i.e. sends minus
//!   connections killed before dispatch;
//! * **cache counter consistency** — `evictions == misses − entries`
//!   (holds through injected eviction storms) and `entries ≤ capacity`.
//!
//! The harness runs single-worker with a single in-flight request, so the
//! server's operation counters advance in lockstep with the client and the
//! whole run — plan, fired-fault trace, fates, report — is a pure function
//! of the seed. `tests/determinism.rs` asserts exactly that. The report
//! deliberately contains no wall-clock quantities.
//!
//! The fault plan only arms indices in the first half of the operation
//! horizon (see `FaultPlan::generate`), so the trailing `stats`/`shutdown`
//! admin exchange is never hit and the accounting stays exact. Without the
//! `fault-inject` feature the same harness runs fault-free and the
//! invariants degenerate to "nothing was lost at all".

use std::collections::BTreeMap;
use std::io;
use std::time::Duration;

use localwm_serve::{Client, FaultPlan, FiredFault, Request, RequestKind, Response, ServeConfig};
use serde::{Serialize, Value};

use crate::stream::{seeded_stream, StreamSpec};

/// Knobs for one chaos run. Everything that affects behavior is explicit
/// here; two runs with equal configs produce identical outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed for both the fault plan and the request stream.
    pub seed: u64,
    /// Stream length.
    pub requests: usize,
    /// Faults armed per injection point (see `FaultPlan::generate`).
    pub faults_per_point: usize,
    /// Worker threads. Keep at 1 for exact deterministic accounting.
    pub workers: usize,
    /// Job queue depth.
    pub queue_depth: usize,
    /// Context-cache capacity; small values make eviction storms bite.
    pub cache_cap: usize,
    /// How long to wait for a response before classifying it as dropped.
    pub recv_timeout: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 1,
            requests: 40,
            faults_per_point: 2,
            workers: 1,
            queue_depth: 32,
            cache_cap: 2,
            recv_timeout: Duration::from_millis(1500),
        }
    }
}

/// Everything a chaos run produces.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The seeded plan that was armed.
    pub plan: FaultPlan,
    /// The faults that actually fired, in firing order.
    pub trace: Vec<FiredFault>,
    /// Human-readable invariant violations (empty = healthy run).
    pub violations: Vec<String>,
    /// The full deterministic report (also carries `violations`).
    pub report: Value,
}

/// How one request ended, as observed by the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    Answered,
    ResponseDropped,
    ConnectionDied,
    SendFailed,
}

impl Fate {
    fn as_str(self) -> &'static str {
        match self {
            Fate::Answered => "answered",
            Fate::ResponseDropped => "response_dropped",
            Fate::ConnectionDied => "connection_died",
            Fate::SendFailed => "send_failed",
        }
    }
}

fn connect(addr: &str, recv_timeout: Duration) -> Result<Client, String> {
    let c = Client::connect_within(addr, Duration::from_secs(5))
        .map_err(|e| format!("connect: {e}"))?;
    c.set_read_timeout(Some(recv_timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    Ok(c)
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Calls an admin request, retrying once over a fresh connection (a fault
/// may have killed the current one between data requests).
fn admin_call(
    client: &mut Client,
    addr: &str,
    recv_timeout: Duration,
    req: &Request,
) -> Result<Response, String> {
    if let Ok(resp) = client.call(req) {
        return Ok(resp);
    }
    *client = connect(addr, recv_timeout)?;
    client
        .call(req)
        .map_err(|e| format!("admin {} failed twice: {e}", req.kind))
}

fn int_field(v: Option<&Value>, name: &str) -> Result<i64, String> {
    match v.and_then(|x| x.field(name)) {
        Some(Value::Int(n)) => Ok(*n),
        other => Err(format!(
            "stats field `{name}` missing or not an int: {other:?}"
        )),
    }
}

/// Runs one chaos scenario end to end. See the module docs for what is
/// checked; violations land in [`ChaosOutcome::violations`] rather than
/// failing the run.
///
/// # Errors
///
/// Returns a message only for harness-level failures (cannot bind,
/// cannot reconnect, admin traffic dead) — never for invariant violations.
///
/// # Panics
///
/// Panics if the seeded stream produces a request without an id (a testkit
/// bug, not a caller error).
pub fn run(cfg: &ChaosConfig) -> Result<ChaosOutcome, String> {
    let plan = FaultPlan::generate(cfg.seed, cfg.requests as u64, cfg.faults_per_point);
    let requests = seeded_stream(&StreamSpec {
        seed: cfg.seed,
        requests: cfg.requests,
    });
    let handle = localwm_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: cfg.workers,
        queue_depth: cfg.queue_depth,
        cache_cap: cfg.cache_cap,
        default_timeout_ms: None,
        metrics_out: None,
        fault_plan: Some(plan.clone()),
        session_idle_ms: None,
        store_dir: None,
        pipeline_window: localwm_serve::server::DEFAULT_PIPELINE_WINDOW,
    })
    .map_err(|e| format!("bind: {e}"))?;
    let addr = handle.addr().to_string();
    let mut client = connect(&addr, cfg.recv_timeout)?;

    let mut fates: Vec<(u64, Fate)> = Vec::with_capacity(requests.len());
    let mut answered: Vec<Response> = Vec::new();
    let mut acks_by_id: BTreeMap<u64, u64> = BTreeMap::new();
    let mut send_failures = 0u64;

    for req in &requests {
        let id = req.id.expect("stream requests carry ids");
        let sent = match client.send(req) {
            Ok(()) => true,
            Err(_) => {
                // The previous fault left a dead socket behind; one retry
                // on a fresh connection.
                client = connect(&addr, cfg.recv_timeout)?;
                client.send(req).is_ok()
            }
        };
        if !sent {
            send_failures += 1;
            fates.push((id, Fate::SendFailed));
            continue;
        }
        loop {
            match client.recv() {
                Ok(resp) => {
                    if let Some(rid) = resp.id {
                        *acks_by_id.entry(rid).or_insert(0) += 1;
                    }
                    let ours = resp.id == Some(id);
                    if ours {
                        answered.push(resp);
                        fates.push((id, Fate::Answered));
                        break;
                    }
                    // A stray (duplicate or late) ack: recorded above for
                    // the double-ack check; keep waiting for ours.
                }
                Err(e) if is_timeout(&e) => {
                    fates.push((id, Fate::ResponseDropped));
                    break;
                }
                Err(_) => {
                    fates.push((id, Fate::ConnectionDied));
                    client = connect(&addr, cfg.recv_timeout)?;
                    break;
                }
            }
        }
    }

    // The stream is done and (single worker, single in-flight request)
    // every dispatched job has completed, so the counters are settled.
    let stats = admin_call(
        &mut client,
        &addr,
        cfg.recv_timeout,
        &Request::new(RequestKind::Stats),
    )?;
    let cache = stats.result_field("cache").cloned();
    let ack = admin_call(
        &mut client,
        &addr,
        cfg.recv_timeout,
        &Request::new(RequestKind::Shutdown),
    )?;
    let drained = match ack.result_field("drained_jobs") {
        Some(Value::Int(n)) => *n,
        other => return Err(format!("shutdown ack without drained_jobs: {other:?}")),
    };
    let trace = handle.fault_trace();
    handle.join();

    // ---- Invariants ----
    let mut violations: Vec<String> = Vec::new();
    for (id, n) in &acks_by_id {
        if *n > 1 {
            violations.push(format!("double ack: id {id} answered {n} times"));
        }
    }
    let fired = |action: &str| -> i64 {
        trace.iter().filter(|f| f.action.as_str() == action).count() as i64
    };
    let lossy_fired = fired("drop_response") + fired("drop_connection") + fired("partial_write");
    let lost = fates.iter().filter(|(_, f)| *f != Fate::Answered).count() as i64;
    if lost != lossy_fired {
        violations.push(format!(
            "lost-response accounting: {lost} requests lost but {lossy_fired} lossy faults fired"
        ));
    }
    let sends_reached = requests.len() as i64 - send_failures as i64;
    let expected_drained = sends_reached - fired("drop_connection");
    if drained != expected_drained {
        violations.push(format!(
            "drain accounting: drained_jobs {drained}, expected {expected_drained} \
             ({sends_reached} reads minus {} connections dropped pre-dispatch)",
            fired("drop_connection")
        ));
    }
    match &cache {
        Some(_) => {
            let hits = int_field(cache.as_ref(), "hits")?;
            let misses = int_field(cache.as_ref(), "misses")?;
            let evictions = int_field(cache.as_ref(), "evictions")?;
            let entries = int_field(cache.as_ref(), "entries")?;
            let capacity = int_field(cache.as_ref(), "capacity")?;
            if evictions != misses - entries {
                violations.push(format!(
                    "cache counters inconsistent: evictions {evictions} != misses {misses} - entries {entries}"
                ));
            }
            if entries > capacity {
                violations.push(format!(
                    "cache over capacity: {entries} entries > {capacity}"
                ));
            }
            if hits < 0 {
                violations.push("cache hit counter underflowed".to_owned());
            }
        }
        None => violations.push("stats response carried no cache section".to_owned()),
    }

    // ---- Deterministic report ----
    let mut ok_count = 0u64;
    let mut by_code: BTreeMap<String, u64> = BTreeMap::new();
    for resp in &answered {
        if resp.ok {
            ok_count += 1;
        } else if let Some(err) = &resp.error {
            *by_code.entry(err.code.as_str().to_owned()).or_insert(0) += 1;
        }
    }
    let report = serde::object(vec![
        ("seed", cfg.seed.to_value()),
        ("requests", cfg.requests.to_value()),
        ("workers", cfg.workers.to_value()),
        ("cache_cap", cfg.cache_cap.to_value()),
        (
            "fault_inject_compiled",
            Value::Bool(cfg!(feature = "fault-inject")),
        ),
        ("plan", plan.to_value()),
        (
            "fired",
            Value::Array(trace.iter().map(Serialize::to_value).collect()),
        ),
        (
            "fates",
            Value::Array(
                fates
                    .iter()
                    .map(|&(id, f)| {
                        Value::Array(vec![id.to_value(), Value::Str(f.as_str().to_owned())])
                    })
                    .collect(),
            ),
        ),
        ("answered", (answered.len() as u64).to_value()),
        ("lost", lost.to_value()),
        ("responses_ok", ok_count.to_value()),
        (
            "responses_by_code",
            Value::Object(
                by_code
                    .into_iter()
                    .map(|(k, v)| (k, v.to_value()))
                    .collect(),
            ),
        ),
        ("cache", cache.unwrap_or(Value::Null)),
        ("drained_jobs", drained.to_value()),
        (
            "violations",
            Value::Array(violations.iter().map(|v| Value::Str(v.clone())).collect()),
        ),
    ]);
    Ok(ChaosOutcome {
        plan,
        trace,
        violations,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_clean_run_reports_no_violations() {
        let cfg = ChaosConfig {
            seed: 99,
            requests: 12,
            faults_per_point: 0, // unarmed plan: a pure smoke run
            ..ChaosConfig::default()
        };
        let out = run(&cfg).expect("chaos run");
        assert!(out.trace.is_empty(), "no faults armed, none may fire");
        assert!(
            out.violations.is_empty(),
            "violations: {:?}",
            out.violations
        );
        assert_eq!(
            out.report.field("answered"),
            Some(&12u64.to_value()),
            "every request answered on a fault-free run"
        );
    }
}
