//! The contention harness: N client threads hammering one live server,
//! checked against a serial in-process reference.
//!
//! [`run`] starts a real server on a loopback socket and replays a
//! deterministic per-client request stream from [`ContentionSpec::clients`]
//! concurrent connections. Two aiming modes:
//!
//! * **one-shard** (`spread: false`) — every client hammers the *same*
//!   design, so all cache traffic lands on a single content shard and its
//!   lock sees maximum contention;
//! * **spread** (`spread: true`) — client `i` works design `i % pool`, so
//!   traffic fans out across shards and the shards contend on nothing but
//!   the aggregate view.
//!
//! Afterwards the harness checks, without tolerance:
//!
//! * **byte-identical responses** — every client's lines equal the serial
//!   [`inproc_lines`] reference for its stream (analysis results are pure
//!   functions of the request, so contention may not move a byte);
//! * **completion** — every client drained its whole stream under a read
//!   timeout, so a shard/coalescing deadlock fails fast instead of hanging;
//! * **shard accounting** — the `stats` cache block's aggregate counters
//!   equal the sum over its `shards` array, every shard satisfies
//!   `evictions == misses − entries` and `entries ≤ capacity`, and the set
//!   of shards that saw misses is exactly the set a local
//!   [`ContextCache`] predicts for the designs in play (placement is a
//!   pure function of the content hash, so the prediction is exact —
//!   singleton in one-shard mode).
//!
//! Violations land in [`ContentionOutcome::violations`]; harness-level
//! failures (bind, connect, dead sockets) are `Err`s.

use std::collections::BTreeSet;
use std::time::Duration;

use localwm_engine::Parallelism;
use localwm_serve::{Client, ContextCache, Request, RequestKind, ServeConfig};
use serde::Value;

use crate::oracle::inproc_lines;
use crate::stream::design_pool;

/// Knobs for one contention run. Everything that affects the request
/// streams is explicit here, so the serial reference is reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentionSpec {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests per client.
    pub rounds: usize,
    /// `false`: all clients hammer one design (one shard). `true`: client
    /// `i` works design `i % pool` (traffic spread across shards).
    pub spread: bool,
    /// Context-cache capacity for the server under test.
    pub cache_cap: usize,
    /// Server worker threads.
    pub workers: usize,
}

impl Default for ContentionSpec {
    fn default() -> Self {
        ContentionSpec {
            clients: 4,
            rounds: 8,
            spread: false,
            cache_cap: 4,
            workers: 2,
        }
    }
}

/// Everything a contention run produces.
#[derive(Debug, Clone)]
pub struct ContentionOutcome {
    /// Clients that ran.
    pub clients: usize,
    /// Requests each client replayed.
    pub requests_per_client: usize,
    /// Shard indices that saw cache misses on the live server.
    pub hot_shards: Vec<usize>,
    /// The server's final `stats` cache block (aggregate + `shards`).
    pub cache: Value,
    /// Human-readable invariant violations (empty = healthy run).
    pub violations: Vec<String>,
}

/// The deterministic request stream client `client` replays: alternating
/// `timing` and `analyze` over the client's design, ids `0..rounds`.
/// A pure function of `(spec, client)` — the serial reference leans on
/// that.
pub fn client_stream(spec: &ContentionSpec, client: usize) -> Vec<Request> {
    let pool = design_pool();
    let design = if spec.spread {
        &pool[client % pool.len()].1
    } else {
        &pool[0].1
    };
    let mut out = Vec::with_capacity(spec.rounds);
    for r in 0..spec.rounds {
        let mut req = if r % 2 == 0 {
            let mut q = Request::new(RequestKind::Timing);
            q.design = Some(design.clone());
            q
        } else {
            let mut q = Request::new(RequestKind::Analyze);
            q.design = Some(design.clone());
            q.samples = Some(10 + r % 7);
            q.seed = Some((client as u64) * 1000 + r as u64);
            q
        };
        req.id = Some(r as u64);
        out.push(req);
    }
    out
}

/// The distinct designs a spec's streams touch, in client order.
fn designs_in_play(spec: &ContentionSpec) -> Vec<String> {
    let pool = design_pool();
    if spec.spread {
        (0..spec.clients.min(pool.len()))
            .map(|i| pool[i].1.clone())
            .collect()
    } else {
        vec![pool[0].1.clone()]
    }
}

fn int_field(v: Option<&Value>, name: &str) -> Result<i64, String> {
    match v.and_then(|x| x.field(name)) {
        Some(Value::Int(n)) => Ok(*n),
        other => Err(format!(
            "stats field `{name}` missing or not an int: {other:?}"
        )),
    }
}

/// Runs one contention scenario end to end. See the module docs for what
/// is checked; violations land in [`ContentionOutcome::violations`] rather
/// than failing the run.
///
/// # Errors
///
/// Returns a message only for harness-level failures (cannot bind or
/// connect, a client socket died, the stats block is missing) — never for
/// invariant violations.
pub fn run(spec: &ContentionSpec) -> Result<ContentionOutcome, String> {
    let streams: Vec<Vec<Request>> = (0..spec.clients).map(|i| client_stream(spec, i)).collect();
    let references: Vec<Vec<String>> = streams
        .iter()
        .map(|reqs| inproc_lines(reqs, spec.cache_cap, Parallelism::Serial))
        .collect();

    let handle = localwm_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: spec.workers,
        queue_depth: (spec.clients * spec.rounds).max(16),
        cache_cap: spec.cache_cap,
        default_timeout_ms: None,
        metrics_out: None,
        fault_plan: None,
        session_idle_ms: None,
        store_dir: None,
        pipeline_window: localwm_serve::server::DEFAULT_PIPELINE_WINDOW,
    })
    .map_err(|e| format!("bind: {e}"))?;
    let addr = handle.addr().to_string();

    let replayed: Vec<Result<Vec<String>, String>> = std::thread::scope(|s| {
        let addr = &addr;
        let handles: Vec<_> = streams
            .iter()
            .map(|reqs| {
                s.spawn(move || -> Result<Vec<String>, String> {
                    let c = Client::connect_within(addr, Duration::from_secs(5))
                        .map_err(|e| format!("connect: {e}"))?;
                    // A deadlock shows up as a timeout here, not a hang.
                    c.set_read_timeout(Some(Duration::from_secs(30)))
                        .map_err(|e| format!("set timeout: {e}"))?;
                    let mut c = c;
                    let mut lines = Vec::with_capacity(reqs.len());
                    for req in reqs {
                        c.send(req).map_err(|e| format!("send: {e}"))?;
                        lines.push(c.recv_line().map_err(|e| format!("recv: {e}"))?);
                    }
                    Ok(lines)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("client thread panicked".to_owned()))
            })
            .collect()
    });

    // All workers are idle once every client drained its stream, so the
    // counters are settled before the stats probe.
    let mut admin = Client::connect_within(&addr, Duration::from_secs(5))
        .map_err(|e| format!("admin connect: {e}"))?;
    let stats = admin
        .call(&Request::new(RequestKind::Stats))
        .map_err(|e| format!("stats: {e}"))?;
    let cache = stats
        .result_field("cache")
        .cloned()
        .ok_or("stats response carried no cache section")?;
    handle.shutdown();

    let mut violations: Vec<String> = Vec::new();
    for (i, got) in replayed.into_iter().enumerate() {
        let got = got.map_err(|e| format!("client {i}: {e}"))?;
        let want = &references[i];
        if got.len() != want.len() {
            violations.push(format!(
                "client {i}: {} lines answered, {} expected",
                got.len(),
                want.len()
            ));
            continue;
        }
        for (j, (w, g)) in want.iter().zip(&got).enumerate() {
            if w != g {
                violations.push(format!(
                    "client {i} request {j}: response diverged from the \
                     serial reference:\n  want {w}\n  got  {g}"
                ));
            }
        }
    }

    // ---- Shard accounting ----
    let shards = match cache.field("shards") {
        Some(Value::Array(items)) => items.clone(),
        other => return Err(format!("cache stats without a shards array: {other:?}")),
    };
    let mut sums = [0i64; 5];
    const FIELDS: [&str; 5] = ["hits", "misses", "evictions", "entries", "capacity"];
    let mut hot = BTreeSet::new();
    for (i, shard) in shards.iter().enumerate() {
        for (k, name) in FIELDS.iter().enumerate() {
            sums[k] += int_field(Some(shard), name)?;
        }
        let misses = int_field(Some(shard), "misses")?;
        let evictions = int_field(Some(shard), "evictions")?;
        let entries = int_field(Some(shard), "entries")?;
        let capacity = int_field(Some(shard), "capacity")?;
        if evictions != misses - entries {
            violations.push(format!(
                "shard {i}: evictions {evictions} != misses {misses} - entries {entries}"
            ));
        }
        if entries > capacity {
            violations.push(format!(
                "shard {i} over capacity: {entries} entries > {capacity}"
            ));
        }
        if misses > 0 {
            hot.insert(i);
        }
    }
    for (k, name) in FIELDS.iter().enumerate() {
        let agg = int_field(Some(&cache), name)?;
        if agg != sums[k] {
            violations.push(format!(
                "aggregate {name} {agg} != sum over shards {}",
                sums[k]
            ));
        }
    }

    // Placement is a pure function of the content hash, so a local cache
    // predicts exactly which shards the live server dirtied.
    let oracle_cache = ContextCache::new(spec.cache_cap);
    for text in designs_in_play(spec) {
        oracle_cache
            .get_or_parse(&text)
            .map_err(|e| format!("oracle parse: {e}"))?;
    }
    let predicted: BTreeSet<usize> = oracle_cache
        .shard_stats()
        .iter()
        .enumerate()
        .filter(|(_, s)| s.misses > 0)
        .map(|(i, _)| i)
        .collect();
    if hot != predicted {
        violations.push(format!(
            "hot shards {hot:?} != predicted placement {predicted:?}"
        ));
    }
    if !spec.spread && hot.len() != 1 {
        violations.push(format!(
            "one-shard mode dirtied {} shards: {hot:?}",
            hot.len()
        ));
    }

    Ok(ContentionOutcome {
        clients: spec.clients,
        requests_per_client: spec.rounds,
        hot_shards: hot.into_iter().collect(),
        cache,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_aimed() {
        let spec = ContentionSpec::default();
        let a = client_stream(&spec, 0);
        let b = client_stream(&spec, 0);
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.rounds);
        // One-shard mode: every client carries the same design.
        let c1 = client_stream(&spec, 1);
        assert_eq!(a[0].design, c1[0].design);
        // Spread mode: clients 0 and 1 work different designs.
        let spread = ContentionSpec {
            spread: true,
            ..spec
        };
        let s0 = client_stream(&spread, 0);
        let s1 = client_stream(&spread, 1);
        assert_ne!(s0[0].design, s1[0].design);
    }

    #[test]
    fn one_shard_smoke_run_is_clean() {
        let out = run(&ContentionSpec {
            clients: 3,
            rounds: 4,
            ..ContentionSpec::default()
        })
        .expect("harness ran");
        assert!(out.violations.is_empty(), "{:#?}", out.violations);
        assert_eq!(out.hot_shards.len(), 1, "all traffic on one shard");
    }
}
