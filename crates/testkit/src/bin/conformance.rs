//! Golden-corpus conformance runner.
//!
//! Checks (or regenerates with `--bless`) two golden artifacts:
//!
//! * the response corpus — `corpus/designs/*.cdfg` + `corpus/golden/*.json`;
//! * the gateway routing transcript — `corpus/gateway/transcript.json`,
//!   recorded by routing the corpus stream across a live 2-backend
//!   cluster (skip with `--no-gateway` on socket-less environments).
//!
//! ```text
//! cargo run -p localwm-testkit --bin conformance             # check, exit 1 on drift
//! cargo run -p localwm-testkit --bin conformance -- --bless  # regenerate everything
//! cargo run -p localwm-testkit --bin conformance -- --dir X  # use a corpus at X
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use localwm_testkit::{cluster, corpus};

fn main() -> ExitCode {
    let mut bless = false;
    let mut gateway = true;
    let mut dir = corpus::corpus_dir();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bless" => bless = true,
            "--no-gateway" => gateway = false,
            "--dir" => match args.next() {
                Some(d) => dir = PathBuf::from(d),
                None => {
                    eprintln!("--dir needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: conformance [--bless] [--no-gateway] [--dir PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    if bless {
        match corpus::bless(&dir) {
            Ok(names) => {
                println!("blessed {} cases into {}:", names.len(), dir.display());
                for n in names {
                    println!("  {n}");
                }
            }
            Err(e) => {
                eprintln!("bless failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        match corpus::bless_traces(&dir) {
            Ok(names) => println!("blessed {} edit traces", names.len()),
            Err(e) => {
                eprintln!("trace bless failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        if gateway {
            match cluster::bless_transcript(&dir) {
                Ok(()) => println!("blessed gateway/transcript.json"),
                Err(e) => {
                    eprintln!("transcript bless failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        ExitCode::SUCCESS
    } else {
        let mut drifts = match corpus::check(&dir) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("corpus check failed: {e} (missing corpus? run with --bless once)");
                return ExitCode::FAILURE;
            }
        };
        match corpus::check_traces(&dir) {
            Ok(more) => drifts.extend(more),
            Err(e) => {
                eprintln!("trace check failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        if gateway {
            match cluster::check_transcript(&dir) {
                Ok(more) => drifts.extend(more),
                Err(e) => {
                    eprintln!("transcript check failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if drifts.is_empty() {
            println!(
                "corpus clean: {} cases match their goldens{}",
                corpus::builtin_cases().len(),
                if gateway {
                    ", gateway transcript matches"
                } else {
                    " (gateway transcript skipped)"
                }
            );
            ExitCode::SUCCESS
        } else {
            eprintln!("corpus drift ({} findings):", drifts.len());
            for d in &drifts {
                eprintln!("{d}");
            }
            eprintln!("run `cargo run -p localwm-testkit --bin conformance -- --bless` to accept");
            ExitCode::FAILURE
        }
    }
}
