//! Golden-corpus conformance runner.
//!
//! ```text
//! cargo run -p localwm-testkit --bin conformance             # check, exit 1 on drift
//! cargo run -p localwm-testkit --bin conformance -- --bless  # regenerate designs + goldens
//! cargo run -p localwm-testkit --bin conformance -- --dir X  # use a corpus at X
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use localwm_testkit::corpus;

fn main() -> ExitCode {
    let mut bless = false;
    let mut dir = corpus::corpus_dir();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bless" => bless = true,
            "--dir" => match args.next() {
                Some(d) => dir = PathBuf::from(d),
                None => {
                    eprintln!("--dir needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: conformance [--bless] [--dir PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    if bless {
        match corpus::bless(&dir) {
            Ok(names) => {
                println!("blessed {} cases into {}:", names.len(), dir.display());
                for n in names {
                    println!("  {n}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bless failed: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        match corpus::check(&dir) {
            Ok(drifts) if drifts.is_empty() => {
                println!(
                    "corpus clean: {} cases match their goldens",
                    corpus::builtin_cases().len()
                );
                ExitCode::SUCCESS
            }
            Ok(drifts) => {
                eprintln!("corpus drift ({} findings):", drifts.len());
                for d in &drifts {
                    eprintln!("{d}");
                }
                eprintln!(
                    "run `cargo run -p localwm-testkit --bin conformance -- --bless` to accept"
                );
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("corpus check failed: {e} (missing corpus? run with --bless once)");
                ExitCode::FAILURE
            }
        }
    }
}
