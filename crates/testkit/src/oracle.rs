//! Differential oracles.
//!
//! One request stream, many lanes, one rule: every lane must produce
//! byte-identical response lines. The lanes:
//!
//! * `inproc-serial` — handlers called directly with
//!   [`Parallelism::Serial`]; this is the reference.
//! * `inproc-threads3` — same handlers, `Parallelism::Threads(3)`.
//! * `inproc-env` — same handlers, [`Parallelism::from_env`] (honors
//!   `LOCALWM_THREADS`, so the oracle covers whatever the ambient
//!   configuration is).
//! * `tcp-cold` — a real server on a loopback socket, fresh cache.
//! * `tcp-warm` — the same server and connection, second pass: every
//!   context comes from the warm cache and the bytes still may not move.
//! * `tcp-binary-cold` / `tcp-binary-warm` — the same two passes over a
//!   connection that negotiated the `LWMB1` framed binary encoding. The
//!   client decodes each frame back to a JSON line, so lane comparison
//!   proves both encodings carry byte-identical response objects.
//! * `tcp-pipelined-w8-cold` / `tcp-pipelined-w8-warm` — the same two
//!   passes with the client pipelining the stream in bursts of 8 in-flight
//!   requests. The server's ordered writer must keep response `i` answering
//!   request `i`, so the lanes must match the lockstep reference byte for
//!   byte — typed errors included.
//! * `tcp-binary-pipelined-w8-cold` / `-warm` — the pipelined passes over
//!   an `LWMB1` framed binary connection.
//! * `inproc-scalar` — the serial handlers again, but with the Monte-Carlo
//!   kernel pinned to one SoA lane
//!   ([`with_soa_lanes`](localwm_timing::with_soa_lanes)`(1, ..)`), so the
//!   vectorized lane width provably never leaks into the wire bytes.
//! * `sharded-contended-c0..cN` — concurrent TCP clients each replay the
//!   *full* stream against one live multi-worker server, so its sharded
//!   cache, single-flight coalescing, and work-stealing pool run under
//!   real contention; every client's lines must still equal the serial
//!   reference.
//!
//! The in-process lanes build response lines exactly the way the server's
//! workers do ([`Response::success`]/[`Response::failure`] + `to_line`),
//! so lane comparison is plain string equality — no tolerance, no
//! normalization.
//!
//! [`probe_invariants`] adds an engine-level oracle: memoized builders run
//! exactly once per context and read-only analysis never invalidates.

use std::sync::Arc;
use std::time::Duration;

use localwm_cdfg::parse_cdfg;
use localwm_engine::{DesignContext, Parallelism, RecordingProbe};
use localwm_serve::handlers;
use localwm_serve::{Client, ContextCache, Request, Response, ServeConfig};

/// One lane disagreement: the lane's line differs from the reference lane
/// at `index`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Lane that diverged.
    pub lane: String,
    /// Position in the request stream.
    pub index: usize,
    /// Request id at that position, if any.
    pub id: Option<u64>,
    /// The reference (`inproc-serial`) line.
    pub want: String,
    /// The diverging lane's line.
    pub got: String,
}

/// Outcome of a differential run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DifferentialReport {
    /// Lanes that ran, reference first.
    pub lanes: Vec<String>,
    /// Requests per lane.
    pub requests: usize,
    /// How many responses in the reference lane were typed errors (the
    /// oracle must cover those too, not just successes).
    pub error_responses: usize,
    /// Every lane disagreement (empty = all lanes byte-identical).
    pub mismatches: Vec<Mismatch>,
}

/// Runs `requests` through the in-process handlers with `par`, returning
/// wire-exact response lines.
pub fn inproc_lines(requests: &[Request], cache_cap: usize, par: Parallelism) -> Vec<String> {
    let cache = ContextCache::new(cache_cap);
    requests
        .iter()
        .map(|req| {
            let resp = match handlers::execute_with(&cache, req, par) {
                Ok(v) => Response::success(req.id, req.kind.as_str(), v),
                Err(e) => Response::failure(req.id, req.kind.as_str(), e),
            };
            resp.to_line()
        })
        .collect()
}

/// Runs `requests` twice through one real TCP server — cold cache, then
/// warm — returning both passes' raw response lines.
///
/// # Errors
///
/// Returns a message on socket failures (bind, connect, send, recv).
pub fn tcp_lines(
    requests: &[Request],
    cache_cap: usize,
    workers: usize,
) -> Result<(Vec<String>, Vec<String>), String> {
    tcp_lines_with(requests, cache_cap, workers, false)
}

/// [`tcp_lines`] over a connection that negotiated the `LWMB1` framed
/// binary encoding. The returned lines are the client's decode of each
/// frame, so comparing them against the JSON lanes proves the encodings
/// carry byte-identical response objects.
///
/// # Errors
///
/// As [`tcp_lines`].
pub fn tcp_binary_lines(
    requests: &[Request],
    cache_cap: usize,
    workers: usize,
) -> Result<(Vec<String>, Vec<String>), String> {
    tcp_lines_with(requests, cache_cap, workers, true)
}

fn tcp_lines_with(
    requests: &[Request],
    cache_cap: usize,
    workers: usize,
    binary: bool,
) -> Result<(Vec<String>, Vec<String>), String> {
    let handle = localwm_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_depth: requests.len().max(16),
        cache_cap,
        default_timeout_ms: None,
        metrics_out: None,
        fault_plan: None,
        session_idle_ms: None,
        store_dir: None,
        pipeline_window: localwm_serve::server::DEFAULT_PIPELINE_WINDOW,
    })
    .map_err(|e| format!("bind: {e}"))?;
    let addr = handle.addr().to_string();
    let run_pass = || -> Result<Vec<String>, String> {
        let connect = if binary {
            Client::connect_binary_within
        } else {
            Client::connect_within
        };
        let mut c = connect(&addr, Duration::from_secs(5)).map_err(|e| format!("connect: {e}"))?;
        let mut lines = Vec::with_capacity(requests.len());
        for req in requests {
            c.send(req).map_err(|e| format!("send: {e}"))?;
            lines.push(c.recv_line().map_err(|e| format!("recv: {e}"))?);
        }
        Ok(lines)
    };
    let cold = run_pass();
    let warm = cold.as_ref().ok().map(|_| run_pass());
    handle.shutdown();
    let cold = cold?;
    let warm = warm.expect("warm pass ran after successful cold pass")?;
    Ok((cold, warm))
}

/// [`tcp_lines`] with the client pipelining the stream in bursts of
/// `window` in-flight requests (one buffered write per burst, responses
/// read back in request order). Runs a cold and a warm pass over one
/// server, JSON lines or `LWMB1` frames per `binary`. Comparing the
/// returned lines against the lockstep lanes proves the server's ordered
/// writer never reorders or drops a pipelined response.
///
/// # Errors
///
/// Returns a message on socket failures (bind, connect, send, recv).
pub fn tcp_pipelined_lines(
    requests: &[Request],
    cache_cap: usize,
    workers: usize,
    window: usize,
    binary: bool,
) -> Result<(Vec<String>, Vec<String>), String> {
    let window = window.max(1);
    let handle = localwm_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_depth: requests.len().max(16),
        cache_cap,
        default_timeout_ms: None,
        metrics_out: None,
        fault_plan: None,
        session_idle_ms: None,
        store_dir: None,
        pipeline_window: window,
    })
    .map_err(|e| format!("bind: {e}"))?;
    let addr = handle.addr().to_string();
    let run_pass = || -> Result<Vec<String>, String> {
        let connect = if binary {
            Client::connect_binary_within
        } else {
            Client::connect_within
        };
        let mut c = connect(&addr, Duration::from_secs(5)).map_err(|e| format!("connect: {e}"))?;
        let mut lines = Vec::with_capacity(requests.len());
        for burst in requests.chunks(window) {
            let encoded: Vec<String> = burst.iter().map(Request::to_line).collect();
            let burst_lines: Vec<&str> = encoded.iter().map(String::as_str).collect();
            lines.extend(
                c.pipeline_lines(&burst_lines)
                    .map_err(|e| format!("pipelined burst: {e}"))?,
            );
        }
        Ok(lines)
    };
    let cold = run_pass();
    let warm = cold.as_ref().ok().map(|_| run_pass());
    handle.shutdown();
    let cold = cold?;
    let warm = warm.expect("warm pass ran after successful cold pass")?;
    Ok((cold, warm))
}

/// Replays the full stream from `clients` concurrent connections against
/// one live multi-worker server, returning each client's response lines.
/// The server's sharded cache and work-stealing pool run under real
/// contention; each client still sees its own responses in request order,
/// so per-client lines remain directly comparable to the serial reference.
///
/// # Errors
///
/// Returns a message on socket failures (bind, connect, send, recv) or a
/// panicked client thread.
pub fn tcp_contended_lines(
    requests: &[Request],
    cache_cap: usize,
    workers: usize,
    clients: usize,
) -> Result<Vec<Vec<String>>, String> {
    let handle = localwm_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_depth: (requests.len() * clients).max(16),
        cache_cap,
        default_timeout_ms: None,
        metrics_out: None,
        fault_plan: None,
        session_idle_ms: None,
        store_dir: None,
        pipeline_window: localwm_serve::server::DEFAULT_PIPELINE_WINDOW,
    })
    .map_err(|e| format!("bind: {e}"))?;
    let addr = handle.addr().to_string();
    let lines: Vec<Result<Vec<String>, String>> = std::thread::scope(|s| {
        let addr = &addr;
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                s.spawn(move || -> Result<Vec<String>, String> {
                    let mut c = Client::connect_within(addr, Duration::from_secs(5))
                        .map_err(|e| format!("connect: {e}"))?;
                    let mut out = Vec::with_capacity(requests.len());
                    for req in requests {
                        c.send(req).map_err(|e| format!("send: {e}"))?;
                        out.push(c.recv_line().map_err(|e| format!("recv: {e}"))?);
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("contended client panicked".to_owned()))
            })
            .collect()
    });
    handle.shutdown();
    lines
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.map_err(|e| format!("contended client {i}: {e}")))
        .collect()
}

/// Runs the full differential oracle over `requests`.
///
/// # Errors
///
/// Returns a message if the TCP lanes cannot run at all (the byte
/// comparison itself never errors — disagreements land in
/// [`DifferentialReport::mismatches`]).
pub fn run_differential(
    requests: &[Request],
    cache_cap: usize,
) -> Result<DifferentialReport, String> {
    let reference = inproc_lines(requests, cache_cap, Parallelism::Serial);
    let (tcp_cold, tcp_warm) = tcp_lines(requests, cache_cap, 2)?;
    let (bin_cold, bin_warm) = tcp_binary_lines(requests, cache_cap, 2)?;
    let (pipe_cold, pipe_warm) = tcp_pipelined_lines(requests, cache_cap, 2, 8, false)?;
    let (bin_pipe_cold, bin_pipe_warm) = tcp_pipelined_lines(requests, cache_cap, 2, 8, true)?;
    let contended = tcp_contended_lines(requests, cache_cap, 3, 3)?;
    let mut lanes: Vec<(String, Vec<String>)> = vec![
        (
            "inproc-threads3".to_owned(),
            inproc_lines(requests, cache_cap, Parallelism::Threads(3)),
        ),
        (
            "inproc-env".to_owned(),
            inproc_lines(requests, cache_cap, Parallelism::from_env()),
        ),
        (
            "inproc-scalar".to_owned(),
            localwm_timing::with_soa_lanes(1, || {
                inproc_lines(requests, cache_cap, Parallelism::Serial)
            }),
        ),
        ("tcp-cold".to_owned(), tcp_cold),
        ("tcp-warm".to_owned(), tcp_warm),
        ("tcp-binary-cold".to_owned(), bin_cold),
        ("tcp-binary-warm".to_owned(), bin_warm),
        ("tcp-pipelined-w8-cold".to_owned(), pipe_cold),
        ("tcp-pipelined-w8-warm".to_owned(), pipe_warm),
        ("tcp-binary-pipelined-w8-cold".to_owned(), bin_pipe_cold),
        ("tcp-binary-pipelined-w8-warm".to_owned(), bin_pipe_warm),
    ];
    lanes.extend(
        contended
            .into_iter()
            .enumerate()
            .map(|(i, lines)| (format!("sharded-contended-c{i}"), lines)),
    );
    let mut mismatches = Vec::new();
    for (lane, lines) in &lanes {
        for (i, (want, got)) in reference.iter().zip(lines).enumerate() {
            if want != got {
                mismatches.push(Mismatch {
                    lane: lane.clone(),
                    index: i,
                    id: requests[i].id,
                    want: want.clone(),
                    got: got.clone(),
                });
            }
        }
        if lines.len() != reference.len() {
            mismatches.push(Mismatch {
                lane: lane.clone(),
                index: reference.len().min(lines.len()),
                id: None,
                want: format!("{} lines", reference.len()),
                got: format!("{} lines", lines.len()),
            });
        }
    }
    let mut names = vec!["inproc-serial".to_owned()];
    names.extend(lanes.into_iter().map(|(n, _)| n));
    Ok(DifferentialReport {
        lanes: names,
        requests: requests.len(),
        error_responses: reference
            .iter()
            .filter(|l| l.contains("\"ok\":false"))
            .count(),
        mismatches,
    })
}

/// Engine-level memoization oracle for one design: after repeated
/// read-only analysis on a single context, the expensive builders have run
/// exactly once, the window table is served from cache, and nothing was
/// invalidated.
///
/// # Errors
///
/// Returns a description of the violated invariant (or a parse error for
/// a malformed design).
pub fn probe_invariants(design_text: &str) -> Result<(), String> {
    let graph = parse_cdfg(design_text).map_err(|e| format!("parse: {e}"))?;
    let probe = Arc::new(RecordingProbe::new());
    let ctx = DesignContext::new(graph).with_probe(probe.clone());
    let cp = ctx.critical_path();
    let _ = ctx.critical_path();
    ctx.windows(cp).map_err(|e| e.to_string())?;
    ctx.windows(cp).map_err(|e| e.to_string())?;
    let checks: [(&str, u64, u64); 3] = [
        (
            "engine.topo.build",
            probe.counter_value("engine.topo.build"),
            1,
        ),
        (
            "engine.unit.build",
            probe.counter_value("engine.unit.build"),
            1,
        ),
        (
            "engine.windows.miss",
            probe.counter_value("engine.windows.miss"),
            1,
        ),
    ];
    for (name, got, want) in checks {
        if got != want {
            return Err(format!("{name} ran {got} times, expected {want}"));
        }
    }
    if probe.counter_value("engine.windows.hit") == 0 {
        return Err("repeated window query did not hit the memo".to_owned());
    }
    if probe.counter_value("engine.invalidate") != 0 {
        return Err("read-only analysis invalidated the context".to_owned());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{seeded_stream, StreamSpec};

    #[test]
    fn inproc_lanes_agree_without_a_server() {
        let reqs = seeded_stream(&StreamSpec {
            seed: 5,
            requests: 12,
        });
        let serial = inproc_lines(&reqs, 4, Parallelism::Serial);
        let threads = inproc_lines(&reqs, 4, Parallelism::Threads(3));
        assert_eq!(serial, threads);
        assert_eq!(serial.len(), 12);
    }

    #[test]
    fn probe_invariants_hold_on_the_reference_design() {
        let text = localwm_cdfg::write_cdfg(&localwm_cdfg::designs::iir4_parallel());
        probe_invariants(&text).expect("memo invariants");
    }

    #[test]
    fn probe_invariants_reject_malformed_designs() {
        assert!(probe_invariants("node a not_an_op\n").is_err());
    }
}
