//! Acceptance: the robustness kinds (`attack`/`strength`) produce
//! byte-identical responses through every lane — the in-process handlers
//! (serial and parallel), a live TCP server (cold/warm, JSON and framed
//! binary), concurrent sharded clients, and a gateway-fronted cluster —
//! and the service's strength report is byte-identical to the library's
//! own sweep, so every surface tells the same robustness story.

use localwm_attack::{strength_report_in, StrengthConfig};
use localwm_core::{SchedWmConfig, Signature};
use localwm_engine::{DesignContext, Parallelism};
use localwm_serve::{handlers, ContextCache, Request, RequestKind};
use localwm_testkit::{cluster, corpus, oracle};

/// The corpus battery's attack/strength requests over every committed
/// design, renumbered as a standalone stream.
fn robustness_requests() -> Vec<Request> {
    let cases = corpus::load_cases(&corpus::corpus_dir())
        .expect("committed corpus on disk (run `conformance -- --bless` once)");
    let mut reqs: Vec<Request> = cases
        .iter()
        .flat_map(corpus::case_requests)
        .filter(|r| matches!(r.kind, RequestKind::Attack | RequestKind::Strength))
        .collect();
    for (i, r) in reqs.iter_mut().enumerate() {
        r.id = Some(i as u64);
    }
    reqs
}

#[test]
fn robustness_kinds_are_byte_identical_across_all_lanes() {
    let reqs = robustness_requests();
    assert!(
        reqs.len() >= 12,
        "one attack and one strength request per corpus design"
    );
    let report = oracle::run_differential(&reqs, 4).expect("all lanes ran");
    assert!(
        report.error_responses > 0,
        "serial designs must contribute typed no_incomparable_pairs errors"
    );
    assert!(
        report.mismatches.is_empty(),
        "robustness lanes diverged:\n{:#?}",
        report.mismatches
    );
}

#[test]
fn gateway_relays_strength_reports_byte_identically() {
    let reqs = robustness_requests();
    let report = cluster::run_gateway_differential(&reqs, &[2]).expect("cluster lanes ran");
    assert!(
        report.mismatches.is_empty(),
        "gateway lanes diverged:\n{:#?}",
        report.mismatches
    );
}

#[test]
fn service_strength_report_matches_the_library_bytes() {
    use serde::Serialize;

    let cases = corpus::load_cases(&corpus::corpus_dir()).expect("committed corpus on disk");
    let case = cases
        .iter()
        .find(|c| c.name == "iir4")
        .expect("iir4 in the corpus");
    // The exact strength request the corpus battery sends for this design.
    let mut req = Request::new(RequestKind::Strength);
    req.design = Some(case.design.clone());
    req.author = Some(corpus::CORPUS_AUTHOR.to_owned());
    req.fraction = Some(0.25);
    req.budgets = Some("0,0.15,0.45".to_owned());
    req.seed = Some(7);
    let cache = ContextCache::new(1);
    let service = handlers::execute(&cache, &req).expect("strength succeeds on iir4");

    let ctx = DesignContext::new(localwm_cdfg::parse_cdfg(&case.design).expect("design parses"));
    let sig = Signature::from_author(corpus::CORPUS_AUTHOR);
    let lib = strength_report_in(
        &ctx,
        &sig,
        Parallelism::Serial,
        &StrengthConfig {
            budgets: vec![0.0, 0.15, 0.45],
            seed: 7,
            wm: SchedWmConfig::with_node_fraction(0.25),
        },
    )
    .expect("library sweep succeeds");
    assert_eq!(
        serde_json::to_string(&service).expect("service json"),
        serde_json::to_string(&lib.to_value()).expect("library json"),
        "the service's strength result must be the library report, byte for byte"
    );
}
