//! Cluster-level acceptance tests: gateway byte-identity over the full
//! golden corpus, golden transcript conformance, and deterministic
//! backend-kill chaos with zero silent drops.

use localwm_testkit::cluster::{self, ClusterConfig, ClusterHarness, GatewayChaosConfig};
use localwm_testkit::corpus;

/// The tentpole acceptance criterion: a gateway in front of 1 and 2
/// backends produces responses byte-identical to the in-process reference
/// over the *full* golden corpus stream — typed errors included, over
/// both the JSON-lines and the `LWMB1` framed binary client encodings.
#[test]
fn gateway_is_byte_identical_over_the_full_corpus() {
    let requests = corpus::corpus_requests(&corpus::builtin_cases());
    let report = cluster::run_gateway_differential(&requests, &[1, 2]).expect("cluster lanes");
    assert_eq!(report.requests, requests.len());
    for lane in [
        "gateway-1",
        "gateway-1-binary",
        "gateway-2",
        "gateway-2-binary",
    ] {
        assert!(
            report.lanes.iter().any(|l| l == lane),
            "lane {lane} missing from {:?}",
            report.lanes
        );
    }
    assert!(
        report.error_responses >= 5,
        "the corpus stream must cover typed errors, saw {}",
        report.error_responses
    );
    assert!(
        report.mismatches.is_empty(),
        "gateway responses diverged from a single backend:\n{:#?}",
        report.mismatches
    );
}

/// The committed routing transcript matches a fresh 2-backend run: shard
/// keys, backend choices, attempt and failover counts are all stable.
#[test]
fn golden_gateway_transcript_has_not_drifted() {
    let drifts = cluster::check_transcript(&corpus::corpus_dir()).expect("transcript check");
    assert!(
        drifts.is_empty(),
        "gateway transcript drift (re-bless with `conformance --bless` if intended):\n{}",
        drifts
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The transcript itself is a pure function of the corpus: two fresh
/// clusters (different ephemeral ports) produce identical transcripts.
#[test]
fn gateway_transcript_is_deterministic_across_clusters() {
    let a = cluster::transcript_text().expect("first run");
    let b = cluster::transcript_text().expect("second run");
    assert_eq!(a, b);
}

/// Killing a backend mid-stream with full replication: the client sees
/// every request answered (no silent drops, no upstream_unavailable), and
/// the routing trace shows the failover.
#[test]
fn backend_kill_with_full_replication_is_invisible_to_clients() {
    let out = cluster::run_gateway_chaos(&GatewayChaosConfig {
        seed: 7,
        requests: 24,
        backends: 2,
        replicas: 2,
        kill: true,
        restart: false,
        ..GatewayChaosConfig::default()
    })
    .expect("chaos run");
    assert!(
        out.violations.is_empty(),
        "violations: {:?}",
        out.violations
    );
    assert_eq!(out.trace.len(), 24, "every accepted request was routed");
    let failovers: u64 = out.trace.iter().map(|r| r.failovers).sum();
    assert!(
        failovers > 0,
        "the kill must force at least one failover (victim owned some shard)"
    );
    assert!(
        out.trace.iter().all(|r| r.backend.is_some()),
        "full replication: every request found a serving backend"
    );
}

/// With replicas=1 the kill is visible as typed `upstream_unavailable`
/// errors for the victim's shards — typed, never silent — and a restart
/// heals those shards for the rest of the stream.
#[test]
fn backend_kill_without_replication_yields_typed_errors_then_heals() {
    let out = cluster::run_gateway_chaos(&GatewayChaosConfig {
        seed: 3,
        requests: 32,
        backends: 2,
        replicas: 1,
        kill: true,
        restart: true,
        ..GatewayChaosConfig::default()
    })
    .expect("chaos run");
    assert!(
        out.violations.is_empty(),
        "violations: {:?}",
        out.violations
    );
    // No request may be silently dropped even while its only replica is
    // dead: the fates are all ok or typed errors.
    let fates = match out.report.field("fates_by_kind") {
        Some(serde::Value::Object(f)) => f.clone(),
        other => panic!("report missing fates_by_kind: {other:?}"),
    };
    assert!(
        fates
            .iter()
            .all(|(k, _)| k == "ok" || k.starts_with("error:")),
        "unexpected fate kinds: {fates:?}"
    );
    assert!(
        !fates.iter().any(|(k, _)| k == "silent_drop"),
        "silent drops recorded: {fates:?}"
    );
}

/// Same seed ⇒ identical chaos report, byte for byte: kill schedule,
/// routing trace, attempt counts, fates — all deterministic.
#[test]
fn gateway_chaos_is_deterministic_for_a_seed() {
    let cfg = GatewayChaosConfig {
        seed: 42,
        requests: 24,
        backends: 2,
        replicas: 2,
        kill: true,
        restart: true,
        ..GatewayChaosConfig::default()
    };
    let a = cluster::run_gateway_chaos(&cfg).expect("first run");
    let b = cluster::run_gateway_chaos(&cfg).expect("second run");
    assert_eq!(
        serde_json::to_string(&a.report).unwrap(),
        serde_json::to_string(&b.report).unwrap(),
        "same seed must reproduce the identical report"
    );
    assert!(a.violations.is_empty(), "violations: {:?}", a.violations);
}

/// Restarting a killed backend on a fresh port brings its shards home:
/// post-restart requests for the victim's shards are served by the victim
/// again (rendezvous ranks names, not addresses).
#[test]
fn restarted_backend_reclaims_its_shards() {
    let mut harness = ClusterHarness::start(ClusterConfig {
        backends: 2,
        replicas: 2,
        ..ClusterConfig::default()
    })
    .expect("cluster");
    let mut c = harness.client().expect("client");
    let design = localwm_cdfg::write_cdfg(&localwm_cdfg::designs::iir4_parallel());
    let mut req = localwm_serve::Request::new(localwm_serve::RequestKind::Timing);
    req.design = Some(design);

    req.id = Some(0);
    assert!(c.call(&req).expect("pre-kill").ok);
    let owner = harness.routing_trace()[0].backend.clone().expect("served");
    let victim: usize = owner.trim_start_matches('b').parse().expect("bN name");

    harness.kill_backend(victim).expect("kill");
    req.id = Some(1);
    assert!(c.call(&req).expect("during-kill").ok, "replica covered");
    harness.restart_backend(victim).expect("restart");
    req.id = Some(2);
    assert!(c.call(&req).expect("post-restart").ok);

    let trace = harness.routing_trace();
    assert_eq!(
        trace[2].backend.as_deref(),
        Some(owner.as_str()),
        "shard returned to its rendezvous owner after restart"
    );
    assert_eq!(trace[0].key, trace[2].key, "same design, same shard key");
    harness.shutdown();
}

/// `cluster_stats` through the harness aggregates the fleet: live gauges
/// from both backends plus per-backend routing counters.
#[test]
fn cluster_stats_reports_fleet_aggregates() {
    let harness = ClusterHarness::start(ClusterConfig::default()).expect("cluster");
    let mut c = harness.client().expect("client");
    let requests = corpus::corpus_requests(&corpus::builtin_cases());
    for req in requests.iter().take(8) {
        c.send(req).expect("send");
        c.recv_line().expect("recv");
    }
    let resp = c
        .call(&localwm_serve::Request::new(
            localwm_serve::RequestKind::ClusterStats,
        ))
        .expect("cluster_stats");
    assert!(resp.ok);
    let agg = resp.result_field("aggregate").expect("aggregate");
    assert_eq!(agg.field("backends"), Some(&serde::Value::Int(2)));
    assert_eq!(agg.field("healthy"), Some(&serde::Value::Int(2)));
    assert_eq!(
        agg.field("workers"),
        Some(&serde::Value::Int(2)),
        "1 worker per harness backend, summed"
    );
    let gw = resp.result_field("gateway").expect("gateway section");
    assert_eq!(gw.field("routed"), Some(&serde::Value::Int(8)));
    harness.shutdown();
}
