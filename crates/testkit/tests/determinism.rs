//! Acceptance: the same seed produces the identical fault plan, the
//! identical injected-fault trace, and the identical violation report
//! across two consecutive chaos runs.

use localwm_testkit::chaos::{self, ChaosConfig};

#[test]
fn same_seed_yields_identical_plan_trace_and_report() {
    let cfg = ChaosConfig {
        seed: 11,
        requests: 32,
        ..ChaosConfig::default()
    };
    let a = chaos::run(&cfg).expect("first chaos run");
    let b = chaos::run(&cfg).expect("second chaos run");

    assert_eq!(a.plan, b.plan, "same seed, same fault plan");
    assert_eq!(a.trace, b.trace, "same seed, same fired-fault trace");
    assert_eq!(a.violations, b.violations, "same seed, same violations");
    assert_eq!(
        serde_json::to_string(&a.report).expect("report serializes"),
        serde_json::to_string(&b.report).expect("report serializes"),
        "same seed, byte-identical report"
    );

    assert!(
        a.violations.is_empty(),
        "chaos invariants violated: {:#?}",
        a.violations
    );

    // With injection compiled in, a seeded plan over 32 requests must
    // actually fire something — otherwise the harness is testing nothing.
    #[cfg(feature = "fault-inject")]
    assert!(!a.trace.is_empty(), "armed plan fired no faults");
    // Without the feature no injector is ever installed, so nothing may
    // fire even though the plan is armed.
    #[cfg(not(feature = "fault-inject"))]
    assert!(a.trace.is_empty(), "faults fired in a feature-off build");
}

#[test]
fn different_seeds_yield_different_plans() {
    let a = chaos::run(&ChaosConfig {
        seed: 21,
        requests: 20,
        ..ChaosConfig::default()
    })
    .expect("run a");
    let b = chaos::run(&ChaosConfig {
        seed: 22,
        requests: 20,
        ..ChaosConfig::default()
    })
    .expect("run b");
    assert_ne!(
        a.plan, b.plan,
        "distinct seeds explore distinct fault plans"
    );
    assert!(a.violations.is_empty(), "{:?}", a.violations);
    assert!(b.violations.is_empty(), "{:?}", b.violations);
}
