//! The committed corpus matches what the current code produces (drift
//! check), and blessing a fresh corpus immediately passes its own check.

use localwm_testkit::corpus;

#[test]
fn committed_corpus_is_drift_free() {
    let drifts = corpus::check(&corpus::corpus_dir()).expect("corpus directory readable");
    assert!(
        drifts.is_empty(),
        "golden corpus drifted — inspect and re-bless if intended:\n{}",
        drifts
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn bless_then_check_round_trips() {
    let dir = std::env::temp_dir().join(format!("localwm-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let written = corpus::bless(&dir).expect("bless into temp dir");
    assert_eq!(written.len(), corpus::builtin_cases().len());
    let drifts = corpus::check(&dir).expect("check temp corpus");
    assert!(
        drifts.is_empty(),
        "freshly blessed corpus drifted: {drifts:?}"
    );

    // Perturb one golden; the checker must localize the damage.
    let victim = dir.join("golden").join(format!("{}.json", written[0]));
    let mut text = std::fs::read_to_string(&victim).expect("read golden");
    text.push_str("{\"extra\": true}\n");
    std::fs::write(&victim, text).expect("corrupt golden");
    let drifts = corpus::check(&dir).expect("check corrupted corpus");
    assert_eq!(drifts.len(), 1, "exactly the corrupted golden drifts");
    assert_eq!(drifts[0].kind, "golden-drift");
    assert_eq!(drifts[0].name, written[0]);
    assert!(drifts[0].diff.contains("extra"), "diff pinpoints the edit");

    let _ = std::fs::remove_dir_all(&dir);
}
