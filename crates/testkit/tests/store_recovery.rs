//! Durability acceptance: storage-fault recovery on the design store and
//! the warm-restart byte-identity lane.
//!
//! Two claims under test, both over real corpus content:
//!
//! * A store that suffers a torn write, silent checksum flip, or
//!   transient read error never serves wrong bytes — intact records
//!   survive recovery, damage is surfaced in the stats and the
//!   non-destructive `verify_dir` audit, and re-puts heal the loss.
//! * A `--store-dir` server restarted over the same directory answers the
//!   full golden corpus byte-identically to its first life — and to the
//!   in-process reference — without writing a single new record (every
//!   design comes off disk, not from a reparse).

use std::time::Duration;

use localwm_engine::Parallelism;
use localwm_serve::{Client, Request, RequestKind, ServeConfig};
use localwm_store::{DesignStore, RecordKind, StoreConfig};
use localwm_testkit::corpus;
use localwm_testkit::oracle::inproc_lines;
use serde::Value;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "localwm-store-recovery-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One counter out of a stats `store`/`protocol` block (counters
/// serialize as non-negative `Int`s).
fn counter(block: &Value, name: &str) -> i64 {
    match block.field(name) {
        Some(Value::Int(n)) => *n,
        Some(Value::UInt(n)) => i64::try_from(*n).expect("counter fits"),
        other => panic!("stats field {name} missing or non-integer: {other:?}"),
    }
}

/// Runs the full corpus stream through a fresh connection to `addr`,
/// returning the raw response lines.
fn run_corpus(addr: &str, requests: &[Request]) -> Vec<String> {
    let mut client = Client::connect_within(addr, Duration::from_secs(5)).expect("connect");
    let mut lines = Vec::with_capacity(requests.len());
    for req in requests {
        client.send(req).expect("send");
        lines.push(client.recv_line().expect("recv"));
    }
    lines
}

fn store_server(dir: &std::path::Path) -> localwm_serve::ServerHandle {
    localwm_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 64,
        cache_cap: 8,
        default_timeout_ms: None,
        metrics_out: None,
        fault_plan: None,
        session_idle_ms: None,
        store_dir: Some(dir.to_str().expect("utf8 path").to_owned()),
        pipeline_window: localwm_serve::server::DEFAULT_PIPELINE_WINDOW,
    })
    .expect("bind store-backed server")
}

/// The warm-restart lane: life 2 of a store-backed server answers the
/// corpus byte-identically to life 1 and to the in-process reference,
/// with zero store writes — every hit is served off disk unparsed.
#[test]
fn warm_restarted_server_answers_the_corpus_byte_identically() {
    let dir = tmp_dir("warm-restart");
    let requests = corpus::corpus_requests(&corpus::builtin_cases());
    let reference = inproc_lines(&requests, 8, Parallelism::Serial);

    let handle = store_server(&dir);
    let first_life = run_corpus(&handle.addr().to_string(), &requests);
    handle.shutdown();
    assert_eq!(first_life, reference, "life 1 matches the reference");

    let handle = store_server(&dir);
    let addr = handle.addr().to_string();
    let second_life = run_corpus(&addr, &requests);
    assert_eq!(
        second_life, first_life,
        "a restarted replica is byte-identical to its first life"
    );

    let mut client = Client::connect_within(&addr, Duration::from_secs(5)).expect("connect");
    let stats = client
        .call(&Request::new(RequestKind::Stats))
        .expect("stats");
    let store = stats.result_field("store").expect("store block");
    assert_eq!(
        counter(store, "puts"),
        0,
        "life 2 wrote nothing: every design came off disk"
    );
    assert!(
        counter(store, "hits") > 0,
        "life 2 served designs from the store, not from reparses"
    );
    assert_eq!(
        counter(store, "dropped_tail"),
        0,
        "clean shutdown, clean open"
    );
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(feature = "fault-inject")]
mod faults {
    use super::*;
    use localwm_store::fault::{StoreFaultAction, StoreFaultPlan, StorePoint};

    /// The corpus designs as store payloads: content bytes whose exact
    /// survival the recovery assertions check.
    fn corpus_payloads() -> Vec<(u64, Vec<u8>)> {
        corpus::builtin_cases()
            .iter()
            .enumerate()
            .map(|(i, case)| (i as u64 + 1, case.design.clone().into_bytes()))
            .collect()
    }

    /// A seeded short write tears the tail record; reopening drops
    /// exactly that record, serves every other byte-identically, and a
    /// re-put of the lost key heals the store.
    #[test]
    fn torn_corpus_write_recovers_on_reopen_and_heals() {
        let dir = tmp_dir("torn-write");
        let payloads = corpus_payloads();
        let torn = payloads.len() as u64 - 1; // the last put tears
        {
            let plan =
                StoreFaultPlan::single(StorePoint::Append, torn, StoreFaultAction::ShortWrite);
            let store =
                DesignStore::open_with_faults(&dir, StoreConfig::default(), &plan).expect("open");
            for (key, payload) in &payloads {
                store.put(RecordKind::Design, *key, payload).expect("put");
            }
        }
        let store = DesignStore::open(&dir).expect("reopen after tear");
        let stats = store.stats();
        assert_eq!(stats.dropped_tail, 1, "the torn append is surfaced");
        assert_eq!(stats.recovered, payloads.len() as u64 - 1);
        for (key, payload) in &payloads[..payloads.len() - 1] {
            assert_eq!(
                store
                    .get(RecordKind::Design, *key)
                    .expect("get")
                    .expect("present"),
                *payload,
                "intact corpus designs survive byte-identically"
            );
        }
        let (lost_key, lost_payload) = payloads.last().expect("corpus nonempty");
        assert_eq!(store.get(RecordKind::Design, *lost_key).expect("get"), None);
        assert!(store
            .put(RecordKind::Design, *lost_key, lost_payload)
            .expect("re-put"));
        assert_eq!(
            store
                .get(RecordKind::Design, *lost_key)
                .expect("get")
                .expect("healed"),
            *lost_payload
        );
        assert!(DesignStore::verify_dir(&dir).expect("audit").ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A silent checksum flip mid-stream: the damaged record fails loudly
    /// on read (never wrong bytes), the non-destructive audit names the
    /// corruption, and reopening recovers everything before the flip.
    #[test]
    fn checksum_flip_is_surfaced_never_served() {
        let dir = tmp_dir("checksum-flip");
        let payloads = corpus_payloads();
        let flipped = 1u64; // the second put lands corrupted
        let store = {
            let plan =
                StoreFaultPlan::single(StorePoint::Append, flipped, StoreFaultAction::ChecksumFlip);
            DesignStore::open_with_faults(&dir, StoreConfig::default(), &plan).expect("open")
        };
        for (key, payload) in &payloads {
            store.put(RecordKind::Design, *key, payload).expect("put");
        }
        let bad_key = payloads[flipped as usize].0;
        assert!(
            store.get(RecordKind::Design, bad_key).is_err(),
            "the flipped record fails its read instead of serving wrong bytes"
        );
        assert_eq!(store.stats().checksum_failures, 1);
        let audit = DesignStore::verify_dir(&dir).expect("audit");
        assert!(!audit.ok(), "the audit reports the flip");
        assert!(audit.corrupt[0].contains("checksum"), "{:?}", audit.corrupt);
        drop(store);
        // Recovery: the scan stops at the flip, so everything before it
        // survives and the store reopens healthy.
        let store = DesignStore::open(&dir).expect("reopen");
        assert_eq!(store.stats().dropped_tail, 1);
        assert_eq!(
            store
                .get(RecordKind::Design, payloads[0].0)
                .expect("get")
                .expect("present"),
            payloads[0].1
        );
        assert!(DesignStore::verify_dir(&dir)
            .expect("post-recovery audit")
            .ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A transient read error fails one get without poisoning the store:
    /// the next read of the same record succeeds byte-identically.
    #[test]
    fn transient_read_error_does_not_poison_the_store() {
        let dir = tmp_dir("read-error");
        let payloads = corpus_payloads();
        let plan = StoreFaultPlan::single(StorePoint::Read, 0, StoreFaultAction::ReadError);
        let store =
            DesignStore::open_with_faults(&dir, StoreConfig::default(), &plan).expect("open");
        for (key, payload) in &payloads {
            store.put(RecordKind::Design, *key, payload).expect("put");
        }
        assert!(store.get(RecordKind::Design, payloads[0].0).is_err());
        assert_eq!(
            store
                .get(RecordKind::Design, payloads[0].0)
                .expect("retry")
                .expect("present"),
            payloads[0].1,
            "the fault was transient; the record is intact"
        );
        assert_eq!(
            store.stats().checksum_failures,
            0,
            "plumbing, not corruption"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
