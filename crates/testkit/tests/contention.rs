//! Acceptance: the sharded serve cache holds up under real client
//! contention — byte-identical responses, no deadlock, and shard
//! accounting that sums exactly — in both aiming modes.

use localwm_testkit::contention::{self, ContentionSpec};

#[test]
fn one_shard_contention_is_byte_identical_and_accounted() {
    let out = contention::run(&ContentionSpec {
        clients: 4,
        rounds: 8,
        spread: false,
        cache_cap: 4,
        workers: 2,
    })
    .expect("harness ran");
    assert!(out.violations.is_empty(), "{:#?}", out.violations);
    assert_eq!(out.clients, 4);
    assert_eq!(out.requests_per_client, 8);
    assert_eq!(
        out.hot_shards.len(),
        1,
        "every client hammered one design, so exactly one shard saw misses: {:?}",
        out.hot_shards
    );
}

#[test]
fn spread_contention_is_byte_identical_and_accounted() {
    let out = contention::run(&ContentionSpec {
        clients: 4,
        rounds: 8,
        spread: true,
        cache_cap: 8,
        workers: 2,
    })
    .expect("harness ran");
    assert!(out.violations.is_empty(), "{:#?}", out.violations);
    assert!(
        out.hot_shards.len() >= 2,
        "four distinct designs should land on at least two shards: {:?}",
        out.hot_shards
    );
}

#[test]
fn contention_survives_a_thrashing_cache() {
    // Capacity 1 forces continuous eviction storms under contention; the
    // counter identities and byte-exactness must survive the thrash.
    let out = contention::run(&ContentionSpec {
        clients: 3,
        rounds: 6,
        spread: true,
        cache_cap: 1,
        workers: 2,
    })
    .expect("harness ran");
    assert!(out.violations.is_empty(), "{:#?}", out.violations);
}
