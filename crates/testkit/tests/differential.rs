//! Acceptance: the differential oracle proves in-process == TCP-cold ==
//! TCP-warm == serial == parallel == framed-binary, byte for byte, on the
//! full golden corpus — typed-error cases included.

use localwm_testkit::corpus;
use localwm_testkit::oracle;

#[test]
fn corpus_lanes_are_byte_identical() {
    let cases = corpus::load_cases(&corpus::corpus_dir())
        .expect("committed corpus on disk (run `conformance -- --bless` once)");
    assert!(cases.len() >= 5, "the committed corpus has real breadth");
    let requests = corpus::corpus_requests(&cases);
    let report = oracle::run_differential(&requests, 4).expect("all lanes ran");

    assert_eq!(report.requests, requests.len());
    for lane in [
        "inproc-serial",
        "inproc-threads3",
        "inproc-env",
        "inproc-scalar",
        "tcp-cold",
        "tcp-warm",
        "tcp-binary-cold",
        "tcp-binary-warm",
        "tcp-pipelined-w8-cold",
        "tcp-pipelined-w8-warm",
        "tcp-binary-pipelined-w8-cold",
        "tcp-binary-pipelined-w8-warm",
    ] {
        assert!(
            report.lanes.iter().any(|l| l == lane),
            "lane {lane} missing from {:?}",
            report.lanes
        );
    }
    assert!(
        report
            .lanes
            .iter()
            .filter(|l| l.starts_with("sharded-contended-c"))
            .count()
            >= 2,
        "contended lanes missing from {:?}",
        report.lanes
    );
    assert!(
        report.error_responses > 0,
        "the oracle must cover typed-error responses, not just successes"
    );
    assert!(
        report.mismatches.is_empty(),
        "lanes diverged:\n{:#?}",
        report.mismatches
    );
}

#[test]
fn probe_invariants_hold_on_every_corpus_design() {
    let cases = corpus::load_cases(&corpus::corpus_dir()).expect("committed corpus on disk");
    for case in &cases {
        oracle::probe_invariants(&case.design)
            .unwrap_or_else(|e| panic!("memo invariant broken on {}: {e}", case.name));
    }
}
