//! JSON round-trips for the data structures (feature `serde`).
#![cfg(feature = "serde")]

use localwm_cdfg::designs::iir4_parallel;
use localwm_cdfg::generators::{layered, LayeredConfig};
use localwm_cdfg::Cdfg;

#[test]
fn cdfg_round_trips_through_json() {
    let g = iir4_parallel();
    let json = serde_json::to_string(&g).expect("serializes");
    let g2: Cdfg = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(g.node_count(), g2.node_count());
    assert_eq!(g.edge_count(), g2.edge_count());
    assert_eq!(g.op_count(), g2.op_count());
    // Names survive.
    assert_eq!(g.node_by_name("A9"), g2.node_by_name("A9"));
    // Structure survives edge by edge.
    let e1: Vec<_> = g.edges().map(|e| (e.src(), e.dst(), e.kind())).collect();
    let e2: Vec<_> = g2.edges().map(|e| (e.src(), e.dst(), e.kind())).collect();
    assert_eq!(e1, e2);
    assert!(g2.validate().is_ok());
}

#[test]
fn generated_graphs_round_trip() {
    let g = layered(&LayeredConfig {
        ops: 120,
        layers: 10,
        seed: 8,
        ..Default::default()
    });
    let json = serde_json::to_string(&g).expect("serializes");
    let g2: Cdfg = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(g.node_count(), g2.node_count());
    assert!(g2.topo_order().is_ok());
}
