//! Property-based tests for the graph core.

use localwm_cdfg::analysis::{depth, fanin_within, levels_from, longest_path_ops};
use localwm_cdfg::generators::{layered, random_dag, LayeredConfig};
use localwm_cdfg::{parse_cdfg, write_cdfg, NodeId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Topological order respects every edge on random DAGs.
    #[test]
    fn topo_respects_edges(n in 2usize..80, p in 0.0f64..0.5, seed in 0u64..2000) {
        let g = random_dag(n, p, seed);
        let order = g.topo_order().expect("random_dag is a DAG");
        let mut pos = vec![0usize; g.node_count()];
        for (i, v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        for e in g.edges() {
            prop_assert!(pos[e.src().index()] < pos[e.dst().index()]);
        }
    }

    /// The text format round-trips structure exactly (layered graphs are
    /// arity-valid, which the parser checks).
    #[test]
    fn textfmt_round_trips(ops in 2usize..60, seed in 0u64..1000) {
        let g = layered(&LayeredConfig {
            ops,
            layers: (ops / 6).max(1),
            seed,
            ..Default::default()
        });
        let text = write_cdfg(&g);
        let g2 = parse_cdfg(&text).expect("own output parses");
        prop_assert_eq!(g.node_count(), g2.node_count());
        prop_assert_eq!(g.edge_count(), g2.edge_count());
        let e1: Vec<_> = g.edges().map(|e| (e.src().index(), e.dst().index(), e.kind())).collect();
        let e2: Vec<_> = g2.edges().map(|e| (e.src().index(), e.dst().index(), e.kind())).collect();
        prop_assert_eq!(e1, e2);
    }

    /// Fanin balls are monotone in the radius and contain their center.
    #[test]
    fn fanin_monotone(n in 2usize..60, p in 0.0f64..0.4, seed in 0u64..1000, v in 0usize..60) {
        let g = random_dag(n, p, seed);
        let v = NodeId::from_index(v % n);
        let mut prev = 0usize;
        for r in 0..5u32 {
            let ball = fanin_within(&g, v, r);
            prop_assert_eq!(ball[0], v);
            prop_assert!(ball.len() >= prev);
            prev = ball.len();
        }
    }

    /// depth(n) equals 1 + max over preds, and the max depth is the
    /// critical path.
    #[test]
    fn depth_recurrence(n in 2usize..60, p in 0.0f64..0.4, seed in 0u64..1000) {
        let g = random_dag(n, p, seed);
        let d = depth(&g);
        for v in g.node_ids() {
            let pred_max = g.preds(v).map(|u| d[u.index()]).max().unwrap_or(0);
            prop_assert_eq!(d[v.index()], pred_max + 1); // all UnitOps are schedulable
        }
        prop_assert_eq!(d.iter().copied().max().unwrap_or(0), longest_path_ops(&g));
    }

    /// Levels from a root are none outside the cone and zero at the root.
    #[test]
    fn levels_sane(n in 2usize..60, p in 0.0f64..0.4, seed in 0u64..1000, r in 0usize..60) {
        let g = random_dag(n, p, seed);
        let root = NodeId::from_index(r % n);
        let levels = levels_from(&g, root);
        prop_assert_eq!(levels[root.index()], Some(0));
        let cone = fanin_within(&g, root, n as u32);
        for v in g.node_ids() {
            prop_assert_eq!(levels[v.index()].is_some(), cone.contains(&v));
        }
    }

    /// Layered graphs always produce exactly the requested op count and
    /// validate.
    #[test]
    fn layered_is_well_formed(ops in 1usize..200, seed in 0u64..500, fresh in 0.0f64..0.9) {
        let layers = (ops / 8).clamp(1, ops);
        let g = layered(&LayeredConfig { ops, layers, fresh_prob: fresh, seed, ..Default::default() });
        prop_assert_eq!(g.op_count(), ops);
        prop_assert!(g.validate().is_ok());
    }

    /// Removing a freshly added temporal edge restores the edge count and
    /// the graph stays a DAG throughout.
    #[test]
    fn temporal_add_remove_round_trip(n in 3usize..50, p in 0.05f64..0.4, seed in 0u64..500) {
        let mut g = random_dag(n, p, seed);
        let before = g.edge_count();
        let a = NodeId::from_index(0);
        let b = NodeId::from_index(n - 1);
        if !g.reaches(b, a) && a != b {
            let id = g.add_temporal_edge(a, b).expect("acyclic by reach check");
            prop_assert!(g.topo_order().is_ok());
            prop_assert_eq!(g.edge_count(), before + 1);
            g.remove_edge(id).expect("just added");
            prop_assert_eq!(g.edge_count(), before);
        }
    }
}
