//! Graphviz (DOT) export.

use std::fmt::Write as _;

use crate::{Cdfg, EdgeKind};

impl Cdfg {
    /// Renders the graph in Graphviz DOT syntax.
    ///
    /// Data edges are solid, control edges dashed, temporal (watermark)
    /// edges dotted and red — handy for eyeballing where constraints landed.
    ///
    /// ```
    /// use localwm_cdfg::{Cdfg, OpKind};
    /// let mut g = Cdfg::new();
    /// let a = g.add_named_node(OpKind::Input, "x");
    /// let b = g.add_node(OpKind::Not);
    /// g.add_data_edge(a, b)?;
    /// let dot = g.to_dot("example");
    /// assert!(dot.contains("digraph example"));
    /// assert!(dot.contains("x\\nin"));
    /// # Ok::<(), localwm_cdfg::CdfgError>(())
    /// ```
    pub fn to_dot(&self, name: &str) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "digraph {name} {{");
        let _ = writeln!(s, "  rankdir=TB;");
        let _ = writeln!(s, "  node [shape=box, fontname=\"monospace\"];");
        for id in self.node_ids() {
            let node = self.node(id).expect("id in range");
            let label = match self.node_name(id) {
                Some(n) => format!("{n}\\n{}", node.kind()),
                None => format!("{id}\\n{}", node.kind()),
            };
            let _ = writeln!(s, "  {} [label=\"{label}\"];", id.index());
        }
        for e in self.edges() {
            let style = match e.kind() {
                EdgeKind::Data => "",
                EdgeKind::Control => " [style=dashed]",
                EdgeKind::Temporal => " [style=dotted, color=red]",
            };
            let _ = writeln!(s, "  {} -> {}{style};", e.src().index(), e.dst().index());
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::{Cdfg, OpKind};

    #[test]
    fn dot_contains_all_nodes_and_edge_styles() {
        let mut g = Cdfg::new();
        let a = g.add_node(OpKind::Input);
        let b = g.add_node(OpKind::Not);
        let c = g.add_node(OpKind::Neg);
        g.add_data_edge(a, b).unwrap();
        g.add_control_edge(a, c).unwrap();
        g.add_temporal_edge(b, c).unwrap();
        let dot = g.to_dot("t");
        assert!(dot.contains("0 -> 1"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("style=dotted, color=red"));
        assert_eq!(dot.matches("label=").count(), 3);
    }
}
