//! Control-data flow graphs (CDFGs) for behavioral synthesis.
//!
//! This crate is the data-model substrate of the *local watermarks*
//! reproduction. It implements the computational model the paper builds on:
//! homogeneous synchronous data flow (SDF) expressed as a hierarchical
//! control-data flow graph — a DAG of operations connected by data, control,
//! and *temporal* edges (the latter being the constraint carriers used by the
//! scheduling watermark).
//!
//! # Contents
//!
//! * [`Cdfg`] — the graph itself, an arena of [`Node`]s and [`Edge`]s.
//! * [`OpKind`] — operation semantics, each with the unique *functionality
//!   identifier* `f(n)` required by the paper's node-ordering criterion C3.
//! * [`analysis`] — levels, fanin trees, distances and subtree extraction
//!   (the machinery behind criteria C1–C3 and domain selection).
//! * [`designs`] — the DSP designs of the paper's evaluation (4th-order
//!   parallel IIR, 8th-order continued-fraction IIR, wavelet filter, …).
//! * [`generators`] — synthetic MediaBench-scale CDFGs and random DAGs.
//!
//! # Example
//!
//! ```
//! use localwm_cdfg::{Cdfg, OpKind};
//!
//! let mut g = Cdfg::new();
//! let x = g.add_node(OpKind::Input);
//! let c = g.add_node(OpKind::Const);
//! let m = g.add_node(OpKind::Mul);
//! let y = g.add_node(OpKind::Output);
//! g.add_data_edge(x, m)?;
//! g.add_data_edge(c, m)?;
//! g.add_data_edge(m, y)?;
//! assert_eq!(g.node_count(), 4);
//! assert!(g.topo_order().is_ok());
//! # Ok::<(), localwm_cdfg::CdfgError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod csr;
mod dot;
mod error;
mod graph;
mod id;
mod intern;
mod op;
mod textfmt;
mod topo;
mod unroll;

pub mod analysis;
pub mod designs;
pub mod generators;

pub use builder::CdfgBuilder;
pub use csr::Csr;
pub use error::CdfgError;
pub use graph::{Cdfg, Edge, EdgeKind, Node};
pub use id::{EdgeId, NodeId};
pub use intern::{StrArena, Sym};
pub use op::OpKind;
pub use textfmt::{parse_cdfg, write_cdfg};
pub use topo::{topo_order, TopoError};
pub use unroll::unroll;
