//! Compressed-sparse-row adjacency views.
//!
//! The arena graph stores adjacency as per-node `Vec<EdgeId>` lists whose
//! entries dereference through the edge slab (`Vec<Option<Edge>>`) — two
//! dependent loads per neighbor, scattered across the heap. Inner loops
//! that sweep the whole graph once per Monte-Carlo sample pay that
//! indirection `samples × (V + E)` times.
//!
//! A [`Csr`] flattens one direction of the adjacency into two arrays: a
//! packed `u32` neighbor array plus per-row offsets. Rows are **laid out in
//! topological order**, so a timing sweep that walks the topo order reads
//! the packed array front to back — sequential, prefetch-friendly access
//! with zero pointer chasing. Tombstoned (removed) edges are skipped at
//! build time, so a CSR row enumerates exactly the live neighbors of
//! [`Cdfg::preds`]/[`Cdfg::succs`].

use crate::{Cdfg, NodeId};

/// A read-only compressed-sparse-row view of one adjacency direction
/// (predecessors or successors), frozen at build time.
///
/// Rows are stored in the order of the `order` slice given at construction
/// (the memoized topological order, in practice). Row `p` — the
/// `p`-th node of that order — spans
/// `targets[offsets[p] .. offsets[p + 1]]`; each target is a dense
/// [`NodeId`] index. Random access by node id goes through a
/// position-lookup table.
///
/// ```
/// use localwm_cdfg::{Cdfg, Csr, OpKind};
///
/// let mut g = Cdfg::new();
/// let a = g.add_node(OpKind::Input);
/// let b = g.add_node(OpKind::Not);
/// let c = g.add_node(OpKind::Add);
/// g.add_data_edge(a, b)?;
/// g.add_data_edge(a, c)?;
/// g.add_data_edge(b, c)?;
/// let order = g.topo_order()?;
/// let preds = Csr::preds(&g, &order);
/// assert_eq!(preds.neighbors_of(c), &[a.index() as u32, b.index() as u32]);
/// assert_eq!(preds.neighbors_of(a), &[] as &[u32]);
/// # Ok::<(), localwm_cdfg::CdfgError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// Row boundaries indexed by **row position** (topo position);
    /// `len == rows + 1`.
    offsets: Vec<u32>,
    /// Packed neighbor array: dense node indices, rows back to back in
    /// row-position order.
    targets: Vec<u32>,
    /// Dense node index → row position, for random access by [`NodeId`].
    pos: Vec<u32>,
}

impl Csr {
    /// Builds the predecessor view: row `p` lists the live-edge sources of
    /// the `p`-th node of `order`, in the node's incoming-edge order.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the graph's node ids.
    pub fn preds(g: &Cdfg, order: &[NodeId]) -> Self {
        Self::build(g, order, |g, n, out| {
            out.extend(g.preds(n).map(|p| p.index() as u32));
        })
    }

    /// Builds the successor view: row `p` lists the live-edge destinations
    /// of the `p`-th node of `order`, in the node's outgoing-edge order.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the graph's node ids.
    pub fn succs(g: &Cdfg, order: &[NodeId]) -> Self {
        Self::build(g, order, |g, n, out| {
            out.extend(g.succs(n).map(|s| s.index() as u32));
        })
    }

    fn build(
        g: &Cdfg,
        order: &[NodeId],
        mut row: impl FnMut(&Cdfg, NodeId, &mut Vec<u32>),
    ) -> Self {
        let n = g.node_count();
        assert_eq!(order.len(), n, "order must cover every node");
        let mut offsets = Vec::with_capacity(n + 1);
        // Live edges only; edge_count() is O(E) but build runs once.
        let mut targets = Vec::with_capacity(g.edge_count());
        let mut pos = vec![u32::MAX; n];
        offsets.push(0);
        for (p, &u) in order.iter().enumerate() {
            assert_eq!(pos[u.index()], u32::MAX, "order repeats a node");
            pos[u.index()] = p as u32;
            row(g, u, &mut targets);
            offsets.push(u32::try_from(targets.len()).expect("edge count exceeds u32::MAX"));
        }
        Csr {
            offsets,
            targets,
            pos,
        }
    }

    /// Number of rows (== number of nodes).
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total packed neighbors (== number of live edges).
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// The neighbors of the node at row position `p` (its index in the
    /// build order), as dense node indices.
    ///
    /// This is the hot-path accessor: sweeps that already walk the topo
    /// order index rows by position and read the packed array
    /// sequentially.
    #[inline]
    pub fn row(&self, p: usize) -> &[u32] {
        &self.targets[self.offsets[p] as usize..self.offsets[p + 1] as usize]
    }

    /// The neighbors of node `n`, as dense node indices (random access:
    /// one extra lookup through the position table).
    #[inline]
    pub fn neighbors_of(&self, n: NodeId) -> &[u32] {
        self.row(self.pos[n.index()] as usize)
    }

    /// The row position of node `n` in the build order.
    #[inline]
    pub fn position(&self, n: NodeId) -> usize {
        self.pos[n.index()] as usize
    }

    /// Number of neighbors of node `n`.
    pub fn degree_of(&self, n: NodeId) -> usize {
        self.neighbors_of(n).len()
    }

    /// Appends an empty row at the end of the row order for a freshly
    /// added node. The incremental engine calls this when a mutation adds
    /// nodes without reordering the rest of the graph: a brand-new node
    /// has no edges yet, and placing it last is always topologically valid
    /// (its edges arrive in later [`Csr::refresh_row`] calls).
    ///
    /// # Panics
    ///
    /// Panics unless `n` is the next dense node index (nodes are arena
    /// allocated, so additions are strictly sequential).
    pub fn append_empty_row(&mut self, n: NodeId) {
        assert_eq!(
            n.index(),
            self.pos.len(),
            "appended node must be the next dense index"
        );
        let p = self.offsets.len() - 1;
        self.pos
            .push(u32::try_from(p).expect("row count exceeds u32::MAX"));
        self.offsets
            .push(*self.offsets.last().expect("offsets non-empty"));
    }

    /// Replaces the neighbor row of `n` wholesale with `neighbors` (dense
    /// node indices, in the graph's current adjacency order), shifting the
    /// packed array and later offsets as needed.
    ///
    /// This is the in-place patch used when a mutation touches a node's
    /// edge list but leaves the topological order valid: only the affected
    /// rows are rewritten instead of rebuilding the whole view. Patched
    /// views are exactly equal to a fresh build over the same order.
    pub fn refresh_row(&mut self, n: NodeId, neighbors: &[u32]) {
        let p = self.pos[n.index()] as usize;
        let start = self.offsets[p] as usize;
        let end = self.offsets[p + 1] as usize;
        self.targets.splice(start..end, neighbors.iter().copied());
        let old_len = end - start;
        if neighbors.len() != old_len {
            let grow = u32::try_from(neighbors.len()).expect("row exceeds u32::MAX");
            let shrink = u32::try_from(old_len).expect("row fits in u32");
            for off in &mut self.offsets[p + 1..] {
                *off = *off + grow - shrink;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    fn diamond() -> (Cdfg, [NodeId; 4]) {
        let mut g = Cdfg::new();
        let a = g.add_node(OpKind::Input);
        let b = g.add_node(OpKind::Not);
        let c = g.add_node(OpKind::Neg);
        let d = g.add_node(OpKind::Add);
        g.add_data_edge(a, b).unwrap();
        g.add_data_edge(a, c).unwrap();
        g.add_data_edge(b, d).unwrap();
        g.add_data_edge(c, d).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn preds_and_succs_match_the_iterator_views() {
        let (g, [a, b, c, d]) = diamond();
        let order = g.topo_order().unwrap();
        let preds = Csr::preds(&g, &order);
        let succs = Csr::succs(&g, &order);
        for n in g.node_ids() {
            let want_p: Vec<u32> = g.preds(n).map(|p| p.index() as u32).collect();
            let want_s: Vec<u32> = g.succs(n).map(|s| s.index() as u32).collect();
            assert_eq!(preds.neighbors_of(n), want_p.as_slice());
            assert_eq!(succs.neighbors_of(n), want_s.as_slice());
        }
        assert_eq!(preds.degree_of(d), 2);
        assert_eq!(succs.degree_of(a), 2);
        assert_eq!(preds.degree_of(a), 0);
        let _ = (b, c);
    }

    #[test]
    fn rows_are_laid_out_in_topo_order() {
        let (g, _) = diamond();
        let order = g.topo_order().unwrap();
        let preds = Csr::preds(&g, &order);
        assert_eq!(preds.rows(), g.node_count());
        assert_eq!(preds.edge_count(), g.edge_count());
        // Walking rows by position visits nodes in the given order and the
        // packed array strictly front to back.
        let mut cursor = 0;
        for (p, &u) in order.iter().enumerate() {
            assert_eq!(preds.position(u), p);
            let row = preds.row(p);
            assert_eq!(row, preds.neighbors_of(u));
            cursor += row.len();
        }
        assert_eq!(cursor, preds.edge_count());
    }

    #[test]
    fn removed_edges_are_skipped() {
        let (mut g, [a, b, _c, d]) = diamond();
        let eid = g
            .edge_ids()
            .find(|&e| {
                let edge = g.edge(e).unwrap();
                edge.src() == a && edge.dst() == b
            })
            .unwrap();
        g.remove_edge(eid).unwrap();
        let order = g.topo_order().unwrap();
        let preds = Csr::preds(&g, &order);
        let succs = Csr::succs(&g, &order);
        assert_eq!(preds.neighbors_of(b), &[] as &[u32]);
        assert_eq!(succs.neighbors_of(a), &[_c.index() as u32]);
        assert_eq!(preds.edge_count(), 3);
        assert_eq!(preds.degree_of(d), 2);
    }

    #[test]
    #[should_panic(expected = "order must cover every node")]
    fn short_order_panics() {
        let (g, [a, ..]) = diamond();
        let _ = Csr::preds(&g, &[a]);
    }

    /// Refreshes `n`'s row in both views from the graph's current
    /// adjacency, the way the incremental engine does after an edge edit.
    fn refresh_node(g: &Cdfg, preds: &mut Csr, succs: &mut Csr, n: NodeId) {
        let p: Vec<u32> = g.preds(n).map(|x| x.index() as u32).collect();
        let s: Vec<u32> = g.succs(n).map(|x| x.index() as u32).collect();
        preds.refresh_row(n, &p);
        succs.refresh_row(n, &s);
    }

    #[test]
    fn patched_rows_equal_a_fresh_build() {
        let (mut g, [a, b, c, d]) = diamond();
        let order = g.topo_order().unwrap();
        let mut preds = Csr::preds(&g, &order);
        let mut succs = Csr::succs(&g, &order);

        // Edge add that keeps the topo order valid: a -> d.
        g.add_data_edge(a, d).unwrap();
        refresh_node(&g, &mut preds, &mut succs, a);
        refresh_node(&g, &mut preds, &mut succs, d);
        assert_eq!(preds, Csr::preds(&g, &order));
        assert_eq!(succs, Csr::succs(&g, &order));

        // Edge removal: b -> d goes away.
        let eid = g
            .edge_ids()
            .find(|&e| {
                let edge = g.edge(e).unwrap();
                edge.src() == b && edge.dst() == d
            })
            .unwrap();
        g.remove_edge(eid).unwrap();
        refresh_node(&g, &mut preds, &mut succs, b);
        refresh_node(&g, &mut preds, &mut succs, d);
        assert_eq!(preds, Csr::preds(&g, &order));
        assert_eq!(succs, Csr::succs(&g, &order));
        let _ = c;
    }

    #[test]
    fn appended_rows_extend_the_order_at_the_tail() {
        let (mut g, [a, _b, _c, d]) = diamond();
        let order = g.topo_order().unwrap();
        let mut preds = Csr::preds(&g, &order);
        let mut succs = Csr::succs(&g, &order);

        let e = g.add_node(OpKind::Not);
        preds.append_empty_row(e);
        succs.append_empty_row(e);
        g.add_data_edge(d, e).unwrap();
        refresh_node(&g, &mut preds, &mut succs, d);
        refresh_node(&g, &mut preds, &mut succs, e);

        let mut extended = order.clone();
        extended.push(e);
        assert_eq!(preds, Csr::preds(&g, &extended));
        assert_eq!(succs, Csr::succs(&g, &extended));
        assert_eq!(preds.neighbors_of(e), &[d.index() as u32]);
        assert_eq!(succs.degree_of(a), 2);
    }
}
