//! Parametric reconstructions of the paper's Table II designs.

use crate::{Cdfg, NodeId, OpKind};

/// Descriptor of one Table II design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Design {
    /// Human-readable name as printed in the paper.
    pub name: &'static str,
    /// Published critical path, in control steps.
    pub critical_path: u32,
    /// Published variable count (HYPER's spec-variable metric; our SSA-value
    /// counts differ — see `EXPERIMENTS.md`).
    pub paper_variables: u32,
    /// Published percentage of templates enforced (column 5, both rows).
    pub enforced_pct: f64,
}

/// The eight Table II designs with their published parameters.
pub fn table2_designs() -> [Table2Design; 8] {
    [
        Table2Design {
            name: "8th Order CF IIR",
            critical_path: 18,
            paper_variables: 35,
            enforced_pct: 3.0,
        },
        Table2Design {
            name: "Linear GE Cntrlr",
            critical_path: 12,
            paper_variables: 48,
            enforced_pct: 5.0,
        },
        Table2Design {
            name: "Wavelet Filter",
            critical_path: 16,
            paper_variables: 31,
            enforced_pct: 4.0,
        },
        Table2Design {
            name: "Modem Filter",
            critical_path: 10,
            paper_variables: 33,
            enforced_pct: 5.0,
        },
        Table2Design {
            name: "Volterra 2nd ord.",
            critical_path: 12,
            paper_variables: 28,
            enforced_pct: 5.0,
        },
        Table2Design {
            name: "Volterra 3rd non-lin.",
            critical_path: 20,
            paper_variables: 50,
            enforced_pct: 3.0,
        },
        Table2Design {
            name: "D/A Converter",
            critical_path: 132,
            paper_variables: 354,
            enforced_pct: 4.0,
        },
        Table2Design {
            name: "Long Echo Canceler",
            critical_path: 2566,
            paper_variables: 1082,
            enforced_pct: 2.0,
        },
    ]
}

/// Synthesizes a dataflow graph matching a Table II design descriptor.
///
/// The generator reproduces the published **critical path exactly** and
/// grows the design towards the published variable count:
///
/// 1. A *backbone* of `critical_path` chained operations (alternating
///    constant-multiplications and additions, the texture of IIR/FIR/
///    Volterra kernels). Every even backbone position is an addition whose
///    second operand is a coefficient-scaled state input, as in a filter
///    ladder.
/// 2. *Tap* chains hanging off the backbone — short `cmul → add → output`
///    side computations — added until the variable count reaches the paper's
///    figure (or the structural maximum for very long backbones, where the
///    paper's variable metric counts reused spec variables rather than SSA
///    values and is therefore smaller than any unrolled graph; measured
///    counts are reported side-by-side in `EXPERIMENTS.md`).
///
/// The result is deterministic (no randomness).
///
/// ```
/// use localwm_cdfg::designs::{table2_design, table2_designs};
/// use localwm_cdfg::analysis::longest_path_ops;
/// let d = table2_designs()[0];
/// let g = table2_design(&d);
/// assert_eq!(longest_path_ops(&g), d.critical_path);
/// ```
pub fn table2_design(desc: &Table2Design) -> Cdfg {
    let cp = desc.critical_path;
    assert!(cp >= 2, "a design needs at least two pipeline stages");
    let mut g = Cdfg::new();
    let x = g.add_named_node(OpKind::Input, "x");

    // Backbone: b1..b_cp with a period-6 texture
    // (cmul, add, add, mul, add, sub). The cmul-add-add runs host `cmac2`
    // modules overlapping `cmac`/`add2` alternatives (the mapper's
    // genuinely conflicting groupings); the mul-add pairs host `mac`
    // modules; the subs stay singletons — so an unconstrained covering
    // already exercises every piece type a watermark can fragment into.
    let mut backbone: Vec<NodeId> = Vec::with_capacity(cp as usize);
    let mut prev = x;
    for i in 1..=cp {
        let n = match i % 6 {
            1 => {
                let n = g.add_named_node(OpKind::ConstMul, format!("m{i}"));
                g.add_data_edge(prev, n).expect("valid edge");
                n
            }
            4 => {
                let n = g.add_named_node(OpKind::Mul, format!("p{i}"));
                g.add_data_edge(prev, n).expect("valid edge");
                g.add_data_edge(x, n).expect("valid edge");
                n
            }
            0 => {
                let s = g.add_named_node(OpKind::Input, format!("s{i}"));
                let n = g.add_named_node(OpKind::Sub, format!("d{i}"));
                g.add_data_edge(prev, n).expect("valid edge");
                g.add_data_edge(s, n).expect("valid edge");
                n
            }
            _ => {
                let s = g.add_named_node(OpKind::Input, format!("s{i}"));
                let n = g.add_named_node(OpKind::Add, format!("a{i}"));
                g.add_data_edge(prev, n).expect("valid edge");
                g.add_data_edge(s, n).expect("valid edge");
                n
            }
        };
        backbone.push(n);
        prev = n;
    }
    let y = g.add_named_node(OpKind::Output, "y");
    g.add_data_edge(prev, y).expect("valid edge");

    // Tap computations until we reach the published variable count, with a
    // structural minimum so every design keeps off-critical matchable
    // sites. A *full tap* is a three-op ladder slice
    // `cmul(x) → add → add → output` (laxity 3, three variables): exactly a
    // `cmac2` library module, but also coverable as `cmac` + singleton or
    // `add2` + singleton — the overlapping alternatives that give enforced
    // matchings their cost. Shorter taps (two ops / one op) make every
    // variable-count parity reachable. Taps read only primary inputs,
    // preserving the backbone's single-fanout template sites.
    let _ = &backbone;
    let target = desc.paper_variables as usize;
    let min_taps = (cp as usize / 16).max(3);
    let v0 = g.variable_count();
    let need = target.saturating_sub(v0);
    let n_taps = min_taps.max(need.div_ceil(4));
    // Tap sizes (1–4 ops each) planned so the variable count lands exactly
    // on the published target whenever `need >= n_taps`; designs whose
    // published count is below the unrolled baseline (the echo canceler)
    // get full structural taps instead. Tap heads alternate between
    // constant-multiplies and adds so unconstrained covers contain cmac2,
    // cmac, add2 and singleton pieces alike.
    let sizes: Vec<usize> = if need >= n_taps {
        let base = need / n_taps;
        let rem = need % n_taps;
        (0..n_taps)
            .map(|i| (base + usize::from(i < rem)).min(4))
            .collect()
    } else {
        vec![3; n_taps]
    };
    for (tap, &size) in sizes.iter().enumerate() {
        let head_kind = if tap % 2 == 0 {
            OpKind::ConstMul
        } else {
            OpKind::Add
        };
        let t = g.add_named_node(head_kind, format!("t{tap}"));
        g.add_data_edge(x, t).expect("valid edge");
        if head_kind == OpKind::Add {
            g.add_data_edge(x, t).expect("valid edge");
        }
        let o = g.add_named_node(OpKind::Output, format!("yt{tap}"));
        let mut head = t;
        for stage in 1..size {
            let a = g.add_named_node(OpKind::Add, format!("ta{tap}_{stage}"));
            g.add_data_edge(head, a).expect("valid edge");
            g.add_data_edge(x, a).expect("valid edge");
            head = a;
        }
        g.add_data_edge(head, o).expect("valid edge");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::longest_path_ops;

    #[test]
    fn every_design_matches_published_critical_path() {
        for d in table2_designs() {
            // Skip the echo canceler here (exercised in the slow test below)
            // to keep the default test run fast.
            if d.critical_path > 200 {
                continue;
            }
            let g = table2_design(&d);
            assert_eq!(longest_path_ops(&g), d.critical_path, "{}", d.name);
            assert!(g.validate().is_ok(), "{}", d.name);
        }
    }

    #[test]
    fn small_designs_hit_published_variable_count() {
        for d in table2_designs().iter().take(6) {
            let g = table2_design(d);
            assert_eq!(
                g.variable_count(),
                d.paper_variables as usize,
                "{}: variable target should be reachable for small designs",
                d.name
            );
        }
    }

    #[test]
    fn echo_canceler_matches_critical_path() {
        let d = table2_designs()[7];
        let g = table2_design(&d);
        assert_eq!(longest_path_ops(&g), 2566);
        // The unrolled graph necessarily has more SSA values than HYPER's
        // reused spec variables.
        assert!(g.variable_count() > d.paper_variables as usize);
    }

    #[test]
    fn generator_is_deterministic() {
        let d = table2_designs()[2];
        let a = table2_design(&d);
        let b = table2_design(&d);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
    }
}
