//! The DSP designs used in the paper's evaluation.
//!
//! [`iir4_parallel`] is the paper's running example (Figs. 3 and 4): a
//! fourth-order parallel-form IIR filter with adds `A1…A9` and constant
//! multiplications `C1…C8`.
//!
//! The Table II designs shipped with HYPER are unavailable, so
//! [`table2_design`] synthesizes structurally equivalent dataflow graphs
//! that reproduce each design's published *critical path* exactly and
//! approximate its size; see `DESIGN.md` §4 for the substitution rationale.

mod iir4;
mod table2;

pub use iir4::iir4_parallel;
pub use table2::{table2_design, table2_designs, Table2Design};
