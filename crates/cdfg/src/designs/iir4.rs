//! The fourth-order parallel IIR filter of the paper's motivational
//! examples (Figs. 3 and 4).

use crate::{Cdfg, CdfgBuilder, OpKind};

/// Builds the fourth-order parallel-form IIR filter.
///
/// The filter is the parallel composition of two direct-form-II
/// second-order sections sharing the input `x`. One loop iteration is
/// unrolled: the four delay states enter as inputs (`s11`, `s21`, `s12`,
/// `s22`) and the end-of-iteration state updates appear as `Delay` nodes.
///
/// Per section *k* (states `s1k`, `s2k`):
///
/// ```text
/// w  = x + a1·s1k + a2·s2k        (adds A1,A2 / A5,A6; cmuls C1,C2 / C5,C6)
/// y  = w + b1·s1k + b2·s2k        (adds A3,A4 / A7,A8; cmuls C3,C4 / C7,C8)
/// ```
///
/// and the filter output is `A9 = y1 + y2`.
///
/// This reconstruction carries the node names the paper's examples use
/// (`A1…A9`, `C1…C8`); the exact drawing in the paper's figure is not
/// machine-readable, so local wiring details may differ (documented in
/// `EXPERIMENTS.md`).
///
/// ```
/// use localwm_cdfg::designs::iir4_parallel;
/// use localwm_cdfg::analysis::longest_path_ops;
/// let g = iir4_parallel();
/// assert_eq!(g.op_count(), 21); // 9 adds + 8 cmuls + 4 state delays
/// assert!(g.node_by_name("A9").is_some());
/// assert_eq!(longest_path_ops(&g), 6);
/// ```
pub fn iir4_parallel() -> Cdfg {
    let mut b = CdfgBuilder::new().node("x", OpKind::Input);
    for k in 1..=2 {
        b = b
            .node(&format!("s1{k}"), OpKind::Input)
            .node(&format!("s2{k}"), OpKind::Input);
    }
    // Section 1: C1,C2 feedback; C3,C4 feedforward; adds A1..A4.
    // Section 2: C5,C6 feedback; C7,C8 feedforward; adds A5..A8.
    for (k, (c0, a0)) in [(1usize, (1usize, 1usize)), (2, (5, 5))] {
        let s1 = format!("s1{k}");
        let s2 = format!("s2{k}");
        b = b
            .node(&format!("C{}", c0), OpKind::ConstMul)
            .node(&format!("C{}", c0 + 1), OpKind::ConstMul)
            .node(&format!("C{}", c0 + 2), OpKind::ConstMul)
            .node(&format!("C{}", c0 + 3), OpKind::ConstMul)
            .node(&format!("A{}", a0), OpKind::Add)
            .node(&format!("A{}", a0 + 1), OpKind::Add)
            .node(&format!("A{}", a0 + 2), OpKind::Add)
            .node(&format!("A{}", a0 + 3), OpKind::Add)
            .data(&s1, &format!("C{}", c0))
            .data(&s2, &format!("C{}", c0 + 1))
            .data(&s1, &format!("C{}", c0 + 2))
            .data(&s2, &format!("C{}", c0 + 3))
            .data("x", &format!("A{}", a0))
            .data(&format!("C{}", c0), &format!("A{}", a0))
            .data(&format!("A{}", a0), &format!("A{}", a0 + 1))
            .data(&format!("C{}", c0 + 1), &format!("A{}", a0 + 1))
            .data(&format!("A{}", a0 + 1), &format!("A{}", a0 + 2))
            .data(&format!("C{}", c0 + 2), &format!("A{}", a0 + 2))
            .data(&format!("A{}", a0 + 2), &format!("A{}", a0 + 3))
            .data(&format!("C{}", c0 + 3), &format!("A{}", a0 + 3))
            // State updates: w -> s1, old s1 -> s2.
            .node(&format!("D1{k}"), OpKind::Delay)
            .node(&format!("D2{k}"), OpKind::Delay)
            .data(&format!("A{}", a0 + 1), &format!("D1{k}"))
            .data(&s1, &format!("D2{k}"));
    }
    b.node("A9", OpKind::Add)
        .node("y", OpKind::Output)
        .data("A4", "A9")
        .data("A8", "A9")
        .data("A9", "y")
        .build()
        .expect("iir4 is a valid CDFG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::longest_path_ops;

    #[test]
    fn has_the_papers_named_nodes() {
        let g = iir4_parallel();
        for i in 1..=9 {
            assert!(g.node_by_name(&format!("A{i}")).is_some(), "missing A{i}");
        }
        for i in 1..=8 {
            assert!(g.node_by_name(&format!("C{i}")).is_some(), "missing C{i}");
        }
    }

    #[test]
    fn op_and_variable_counts() {
        let g = iir4_parallel();
        // 9 adds + 8 cmuls + 4 delays = 21 schedulable ops.
        assert_eq!(g.op_count(), 21);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn critical_path_is_six_operations() {
        // s11 -> C1 -> A1 -> A2 -> A3 -> A4 -> A9: one cmul plus five adds.
        let g = iir4_parallel();
        assert_eq!(longest_path_ops(&g), 6);
    }

    #[test]
    fn cmuls_are_all_at_depth_one() {
        let g = iir4_parallel();
        let d = crate::analysis::depth(&g);
        for i in 1..=8 {
            let c = g.node_by_name(&format!("C{i}")).unwrap();
            assert_eq!(d[c.index()], 1, "C{i} should be ready at step 1");
        }
    }
}
