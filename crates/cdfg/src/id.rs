//! Strongly-typed identifiers for graph entities.

use std::fmt;

/// Identifier of a node (operation) in a [`Cdfg`](crate::Cdfg).
///
/// Node ids are dense indices: they are assigned consecutively starting at
/// zero, so they can be used to index side tables (`Vec<T>` keyed by node).
///
/// ```
/// use localwm_cdfg::{Cdfg, OpKind};
/// let mut g = Cdfg::new();
/// let n = g.add_node(OpKind::Add);
/// assert_eq!(n.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw dense index.
    ///
    /// Useful for deserialization and for rebuilding side tables; ordinary
    /// construction happens through [`Cdfg::add_node`](crate::Cdfg::add_node).
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an edge in a [`Cdfg`](crate::Cdfg).
///
/// Edge ids are dense indices, assigned consecutively starting at zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// Creates an edge id from a raw dense index.
    pub fn from_index(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index exceeds u32::MAX"))
    }

    /// Returns the dense index of this edge.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_index() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    fn edge_id_round_trips_through_index() {
        let id = EdgeId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "e7");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert!(EdgeId::from_index(0) < EdgeId::from_index(9));
    }
}

/// Hand-written [`serde`] impls: ids serialize as their raw dense index.
/// (The vendored offline serde stand-in has no derive macros; see
/// `vendor/README.md`.)
#[cfg(feature = "serde")]
mod serde_impls {
    use super::{EdgeId, NodeId};
    use serde::{DeError, Deserialize, Serialize, Value};

    impl Serialize for NodeId {
        fn to_value(&self) -> Value {
            self.0.to_value()
        }
    }

    impl Deserialize for NodeId {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            u32::from_value(v).map(NodeId)
        }
    }

    impl Serialize for EdgeId {
        fn to_value(&self) -> Value {
            self.0.to_value()
        }
    }

    impl Deserialize for EdgeId {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            u32::from_value(v).map(EdgeId)
        }
    }
}
