//! SDF iteration unrolling.
//!
//! The paper's computational model is homogeneous synchronous dataflow: a
//! design describes one iteration, with `Delay` nodes (`z⁻¹`) carrying
//! state to the next. Unrolling splices `k` copies of the iteration
//! together — each `Delay`'s input feeds the state `Input` of the next
//! copy — which is how throughput-oriented synthesis (and watermarking of
//! multi-iteration schedules) sees the design.

use crate::{Cdfg, CdfgError, NodeId, OpKind};

/// Unrolls `k ≥ 1` iterations of an SDF design.
///
/// State matching is positional: the i-th `Delay` node's value feeds
/// whatever the i-th state `Input` fed in the next copy. A *state input*
/// is an `Input` whose name starts with `s` by the convention of this
/// crate's designs, or — when no named convention is present — the inputs
/// are left independent per iteration (pure feed-forward unrolling).
///
/// Nodes of copy `j` are named `<name>@<j>` when the original is named.
///
/// # Errors
///
/// Propagates graph-construction errors.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// ```
/// use localwm_cdfg::designs::iir4_parallel;
/// use localwm_cdfg::unroll;
/// use localwm_cdfg::analysis::longest_path_ops;
///
/// let g = iir4_parallel();
/// let u = unroll(&g, 3)?;
/// assert_eq!(u.op_count(), 3 * g.op_count() - 2 * 4); // delays splice away
/// assert!(longest_path_ops(&u) > longest_path_ops(&g));
/// # Ok::<(), localwm_cdfg::CdfgError>(())
/// ```
pub fn unroll(g: &Cdfg, k: usize) -> Result<Cdfg, CdfgError> {
    assert!(k >= 1, "unroll factor must be at least 1");
    // Identify state pairs: delays (in id order) and state inputs (in id
    // order, names starting with 's').
    let delays: Vec<NodeId> = g
        .node_ids()
        .filter(|&n| g.kind(n) == OpKind::Delay)
        .collect();
    let state_inputs: Vec<NodeId> = g
        .node_ids()
        .filter(|&n| {
            g.kind(n) == OpKind::Input && g.node_name(n).is_some_and(|name| name.starts_with('s'))
        })
        .collect();
    let paired = delays.len().min(state_inputs.len());

    let mut out = Cdfg::with_capacity(g.node_count() * k, g.edge_count() * k);
    // map[j][old.index()] = new node in copy j (None for spliced nodes).
    let mut map: Vec<Vec<Option<NodeId>>> = Vec::with_capacity(k);
    for j in 0..k {
        let mut copy: Vec<Option<NodeId>> = vec![None; g.node_count()];
        for n in g.node_ids() {
            let kind = g.kind(n);
            // Delays materialize only in the last copy (they carry state
            // *out* of the unrolled block); earlier copies splice them.
            if kind == OpKind::Delay && j + 1 < k && delays[..paired].contains(&n) {
                continue;
            }
            // State inputs materialize only in the first copy.
            if j > 0 && state_inputs[..paired].contains(&n) {
                continue;
            }
            let new = match g.node_name(n) {
                Some(name) => out.try_add_named_node(kind, format!("{name}@{j}"))?,
                None => out.add_node(kind),
            };
            if let Some(lit) = g.node(n).and_then(|x| x.literal()) {
                out.set_literal(new, lit);
            }
            copy[n.index()] = Some(new);
        }
        map.push(copy);
    }

    // Resolves the producer feeding `n` in copy `j`, walking splices.
    let resolve = |map: &[Vec<Option<NodeId>>], j: usize, n: NodeId| -> NodeId {
        if let Some(new) = map[j][n.index()] {
            return new;
        }
        // Spliced: either a state input of copy j>0 (value comes from the
        // previous copy's delay *input*), or a delay of copy j<k-1 (value
        // is its own input within copy j).
        if let Some(pos) = state_inputs[..paired].iter().position(|&s| s == n) {
            let delay = delays[pos];
            let feeder = g.data_preds(delay).next().expect("delays have one operand");
            // The value the delay would have captured in copy j-1.
            return resolve_inner(
                map,
                g,
                &state_inputs[..paired],
                &delays[..paired],
                j - 1,
                feeder,
            );
        }
        unreachable!("only state inputs are spliced without a direct mapping")
    };

    for j in 0..k {
        for e in g.edges() {
            let (src, dst) = (e.src(), e.dst());
            // Skip edges whose destination was spliced away in this copy.
            let Some(new_dst) = map[j][dst.index()] else {
                continue;
            };
            let new_src = if map[j][src.index()].is_some() {
                map[j][src.index()].expect("checked")
            } else {
                resolve(&map, j, src)
            };
            out.add_edge(e.kind(), new_src, new_dst)?;
        }
    }
    Ok(out)
}

fn resolve_inner(
    map: &[Vec<Option<NodeId>>],
    g: &Cdfg,
    state_inputs: &[NodeId],
    delays: &[NodeId],
    j: usize,
    n: NodeId,
) -> NodeId {
    if let Some(new) = map[j][n.index()] {
        return new;
    }
    if let Some(pos) = state_inputs.iter().position(|&s| s == n) {
        assert!(j > 0, "copy 0 state inputs always materialize");
        let feeder = g
            .data_preds(delays[pos])
            .next()
            .expect("delays have one operand");
        return resolve_inner(map, g, state_inputs, delays, j - 1, feeder);
    }
    unreachable!("unresolvable spliced node")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::longest_path_ops;
    use crate::designs::iir4_parallel;

    #[test]
    fn unroll_one_is_isomorphic_in_size() {
        let g = iir4_parallel();
        let u = unroll(&g, 1).unwrap();
        assert_eq!(u.node_count(), g.node_count());
        assert_eq!(u.edge_count(), g.edge_count());
        assert!(u.validate().is_ok());
    }

    #[test]
    fn unroll_extends_the_critical_path() {
        let g = iir4_parallel();
        let cp1 = longest_path_ops(&g);
        let u2 = unroll(&g, 2).unwrap();
        let u4 = unroll(&g, 4).unwrap();
        assert!(u2.validate().is_ok());
        assert!(u4.validate().is_ok());
        let cp2 = longest_path_ops(&u2);
        let cp4 = longest_path_ops(&u4);
        assert!(cp2 > cp1, "state recurrence must lengthen the path");
        assert!(cp4 > cp2);
    }

    #[test]
    fn delays_and_states_splice_away() {
        let g = iir4_parallel(); // 4 delays, 4 state inputs
        let u = unroll(&g, 3).unwrap();
        let delays = u.node_ids().filter(|&n| u.kind(n) == OpKind::Delay).count();
        assert_eq!(delays, 4, "only the last copy keeps its delays");
        let state_inputs = u
            .node_ids()
            .filter(|&n| {
                u.kind(n) == OpKind::Input && u.node_name(n).is_some_and(|m| m.starts_with('s'))
            })
            .count();
        assert_eq!(state_inputs, 4, "only the first copy keeps state inputs");
    }

    #[test]
    fn copies_are_named_by_iteration() {
        let g = iir4_parallel();
        let u = unroll(&g, 2).unwrap();
        assert!(u.node_by_name("A9@0").is_some());
        assert!(u.node_by_name("A9@1").is_some());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_unroll_panics() {
        let _ = unroll(&iir4_parallel(), 0);
    }
}
