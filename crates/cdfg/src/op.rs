//! Operation semantics.
//!
//! The paper's node-ordering criterion C3 requires that "all possible
//! distinct operations are uniquely identified (e.g., addition is identified
//! with 1, multiplication with 2, etc.)". [`OpKind::functionality_id`] is
//! exactly that mapping.

use std::fmt;
use std::str::FromStr;

/// The kind of a CDFG operation node.
///
/// The set covers the homogeneous-SDF operations occurring in the paper's
/// DSP benchmarks (adds, constant multiplications, delays, …) plus the
/// generic ALU / memory / control operations needed for MediaBench-scale
/// graphs compiled onto the VLIW evaluation machine.
///
/// ```
/// use localwm_cdfg::OpKind;
/// assert_eq!(OpKind::Add.functionality_id(), 1);
/// assert_eq!(OpKind::Mul.functionality_id(), 2);
/// assert!(OpKind::Add.is_schedulable());
/// assert!(!OpKind::Input.is_schedulable());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum OpKind {
    /// Primary input (a source; takes no operands).
    Input,
    /// Primary output (a sink; produces no value consumed inside the graph).
    Output,
    /// Compile-time constant (a source).
    Const,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// General multiplication.
    Mul,
    /// Multiplication by a constant coefficient (the `C*` nodes of the
    /// paper's IIR example).
    ConstMul,
    /// Division.
    Div,
    /// Left shift.
    Shl,
    /// Right shift.
    Shr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Bitwise/logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
    /// Less-than comparison.
    Lt,
    /// Equality comparison.
    Eq,
    /// Two-way multiplexer (select).
    Mux,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch anchor (control operation).
    Branch,
    /// Unit-delay register (`z⁻¹` in filter structures).
    Delay,
    /// A unit operation with no architectural effect — the paper induces
    /// temporal edges in compiled code "using additional operations with
    /// unit operators (e.g., additions with variables assigned to zero at
    /// runtime)". Embedders insert these as watermark anchors.
    UnitOp,
}

impl OpKind {
    /// All operation kinds, in functionality-id order.
    pub const ALL: [OpKind; 23] = [
        OpKind::Input,
        OpKind::Add,
        OpKind::Mul,
        OpKind::Sub,
        OpKind::ConstMul,
        OpKind::Div,
        OpKind::Shl,
        OpKind::Shr,
        OpKind::And,
        OpKind::Or,
        OpKind::Xor,
        OpKind::Not,
        OpKind::Neg,
        OpKind::Lt,
        OpKind::Eq,
        OpKind::Mux,
        OpKind::Load,
        OpKind::Store,
        OpKind::Branch,
        OpKind::Delay,
        OpKind::UnitOp,
        OpKind::Const,
        OpKind::Output,
    ];

    /// The unique functionality identifier `f(n)` of criterion C3.
    ///
    /// Follows the paper's convention: addition is 1, multiplication is 2,
    /// and every further distinct operation gets its own identifier. Sources
    /// and sinks get identifiers too so that φ sums are total functions.
    pub fn functionality_id(self) -> u32 {
        match self {
            OpKind::Input => 0,
            OpKind::Add => 1,
            OpKind::Mul => 2,
            OpKind::Sub => 3,
            OpKind::ConstMul => 4,
            OpKind::Div => 5,
            OpKind::Shl => 6,
            OpKind::Shr => 7,
            OpKind::And => 8,
            OpKind::Or => 9,
            OpKind::Xor => 10,
            OpKind::Not => 11,
            OpKind::Neg => 12,
            OpKind::Lt => 13,
            OpKind::Eq => 14,
            OpKind::Mux => 15,
            OpKind::Load => 16,
            OpKind::Store => 17,
            OpKind::Branch => 18,
            OpKind::Delay => 19,
            OpKind::UnitOp => 20,
            OpKind::Const => 21,
            OpKind::Output => 22,
        }
    }

    /// Number of data operands this operation consumes.
    ///
    /// `None` means variadic (outputs accept one operand but stores accept
    /// two, muxes three; variadic kinds are validated individually).
    pub fn arity(self) -> Option<usize> {
        match self {
            OpKind::Input | OpKind::Const => Some(0),
            OpKind::Output
            | OpKind::Not
            | OpKind::Neg
            | OpKind::Delay
            | OpKind::ConstMul
            | OpKind::Load
            | OpKind::Branch
            | OpKind::UnitOp => Some(1),
            OpKind::Add
            | OpKind::Sub
            | OpKind::Mul
            | OpKind::Div
            | OpKind::Shl
            | OpKind::Shr
            | OpKind::And
            | OpKind::Or
            | OpKind::Xor
            | OpKind::Lt
            | OpKind::Eq
            | OpKind::Store => Some(2),
            OpKind::Mux => Some(3),
        }
    }

    /// Whether the operation occupies a control step when scheduled.
    ///
    /// Inputs and constants are available "for free" at step 0, and writing
    /// a primary output is a wire, not an operation; everything else takes
    /// one control step in the homogeneous SDF model.
    pub fn is_schedulable(self) -> bool {
        !matches!(self, OpKind::Input | OpKind::Const | OpKind::Output)
    }

    /// Whether the operation is a pure source (no data operands).
    pub fn is_source(self) -> bool {
        matches!(self, OpKind::Input | OpKind::Const)
    }

    /// Whether the operation is a sink (its result is not consumed).
    pub fn is_sink(self) -> bool {
        matches!(self, OpKind::Output | OpKind::Store | OpKind::Branch)
    }

    /// Short mnemonic used by the text format and DOT export.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Input => "in",
            OpKind::Output => "out",
            OpKind::Const => "const",
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::ConstMul => "cmul",
            OpKind::Div => "div",
            OpKind::Shl => "shl",
            OpKind::Shr => "shr",
            OpKind::And => "and",
            OpKind::Or => "or",
            OpKind::Xor => "xor",
            OpKind::Not => "not",
            OpKind::Neg => "neg",
            OpKind::Lt => "lt",
            OpKind::Eq => "eq",
            OpKind::Mux => "mux",
            OpKind::Load => "load",
            OpKind::Store => "store",
            OpKind::Branch => "br",
            OpKind::Delay => "delay",
            OpKind::UnitOp => "unit",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Error returned when parsing an [`OpKind`] mnemonic fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOpKindError {
    token: String,
}

impl fmt::Display for ParseOpKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown operation mnemonic `{}`", self.token)
    }
}

impl std::error::Error for ParseOpKindError {}

impl FromStr for OpKind {
    type Err = ParseOpKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let kind = match s {
            "in" => OpKind::Input,
            "out" => OpKind::Output,
            "const" => OpKind::Const,
            "add" => OpKind::Add,
            "sub" => OpKind::Sub,
            "mul" => OpKind::Mul,
            "cmul" => OpKind::ConstMul,
            "div" => OpKind::Div,
            "shl" => OpKind::Shl,
            "shr" => OpKind::Shr,
            "and" => OpKind::And,
            "or" => OpKind::Or,
            "xor" => OpKind::Xor,
            "not" => OpKind::Not,
            "neg" => OpKind::Neg,
            "lt" => OpKind::Lt,
            "eq" => OpKind::Eq,
            "mux" => OpKind::Mux,
            "load" => OpKind::Load,
            "store" => OpKind::Store,
            "br" => OpKind::Branch,
            "delay" => OpKind::Delay,
            "unit" => OpKind::UnitOp,
            other => {
                return Err(ParseOpKindError {
                    token: other.to_owned(),
                })
            }
        };
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn functionality_ids_are_unique() {
        let kinds = [
            OpKind::Input,
            OpKind::Output,
            OpKind::Const,
            OpKind::Add,
            OpKind::Sub,
            OpKind::Mul,
            OpKind::ConstMul,
            OpKind::Div,
            OpKind::Shl,
            OpKind::Shr,
            OpKind::And,
            OpKind::Or,
            OpKind::Xor,
            OpKind::Not,
            OpKind::Neg,
            OpKind::Lt,
            OpKind::Eq,
            OpKind::Mux,
            OpKind::Load,
            OpKind::Store,
            OpKind::Branch,
            OpKind::Delay,
            OpKind::UnitOp,
        ];
        let ids: HashSet<u32> = kinds.iter().map(|k| k.functionality_id()).collect();
        assert_eq!(ids.len(), kinds.len(), "functionality ids must be unique");
    }

    #[test]
    fn paper_convention_add_is_one_mul_is_two() {
        assert_eq!(OpKind::Add.functionality_id(), 1);
        assert_eq!(OpKind::Mul.functionality_id(), 2);
    }

    #[test]
    fn mnemonics_round_trip() {
        for kind in [
            OpKind::Input,
            OpKind::Output,
            OpKind::Const,
            OpKind::Add,
            OpKind::Sub,
            OpKind::Mul,
            OpKind::ConstMul,
            OpKind::Div,
            OpKind::Shl,
            OpKind::Shr,
            OpKind::And,
            OpKind::Or,
            OpKind::Xor,
            OpKind::Not,
            OpKind::Neg,
            OpKind::Lt,
            OpKind::Eq,
            OpKind::Mux,
            OpKind::Load,
            OpKind::Store,
            OpKind::Branch,
            OpKind::Delay,
            OpKind::UnitOp,
        ] {
            let parsed: OpKind = kind.mnemonic().parse().expect("mnemonic parses");
            assert_eq!(parsed, kind);
        }
    }

    #[test]
    fn unknown_mnemonic_is_rejected() {
        let err = "bogus".parse::<OpKind>().unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn sources_have_zero_arity_and_are_not_schedulable() {
        assert_eq!(OpKind::Input.arity(), Some(0));
        assert_eq!(OpKind::Const.arity(), Some(0));
        assert!(!OpKind::Input.is_schedulable());
        assert!(OpKind::Store.is_sink());
        assert!(OpKind::Add.is_schedulable());
    }
}

/// Hand-written [`serde`] impls: kinds serialize as their variant name.
/// (The vendored offline serde stand-in has no derive macros; see
/// `vendor/README.md`.)
#[cfg(feature = "serde")]
mod serde_impls {
    use super::OpKind;
    use serde::{DeError, Deserialize, Serialize, Value};

    impl Serialize for OpKind {
        fn to_value(&self) -> Value {
            Value::Str(
                match self {
                    OpKind::Input => "Input",
                    OpKind::Output => "Output",
                    OpKind::Const => "Const",
                    OpKind::Add => "Add",
                    OpKind::Sub => "Sub",
                    OpKind::Mul => "Mul",
                    OpKind::ConstMul => "ConstMul",
                    OpKind::Div => "Div",
                    OpKind::Shl => "Shl",
                    OpKind::Shr => "Shr",
                    OpKind::And => "And",
                    OpKind::Or => "Or",
                    OpKind::Xor => "Xor",
                    OpKind::Not => "Not",
                    OpKind::Neg => "Neg",
                    OpKind::Lt => "Lt",
                    OpKind::Eq => "Eq",
                    OpKind::Mux => "Mux",
                    OpKind::Load => "Load",
                    OpKind::Store => "Store",
                    OpKind::Branch => "Branch",
                    OpKind::Delay => "Delay",
                    OpKind::UnitOp => "UnitOp",
                }
                .to_owned(),
            )
        }
    }

    impl Deserialize for OpKind {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            match v {
                Value::Str(s) => match s.as_str() {
                    "Input" => Ok(OpKind::Input),
                    "Output" => Ok(OpKind::Output),
                    "Const" => Ok(OpKind::Const),
                    "Add" => Ok(OpKind::Add),
                    "Sub" => Ok(OpKind::Sub),
                    "Mul" => Ok(OpKind::Mul),
                    "ConstMul" => Ok(OpKind::ConstMul),
                    "Div" => Ok(OpKind::Div),
                    "Shl" => Ok(OpKind::Shl),
                    "Shr" => Ok(OpKind::Shr),
                    "And" => Ok(OpKind::And),
                    "Or" => Ok(OpKind::Or),
                    "Xor" => Ok(OpKind::Xor),
                    "Not" => Ok(OpKind::Not),
                    "Neg" => Ok(OpKind::Neg),
                    "Lt" => Ok(OpKind::Lt),
                    "Eq" => Ok(OpKind::Eq),
                    "Mux" => Ok(OpKind::Mux),
                    "Load" => Ok(OpKind::Load),
                    "Store" => Ok(OpKind::Store),
                    "Branch" => Ok(OpKind::Branch),
                    "Delay" => Ok(OpKind::Delay),
                    "UnitOp" => Ok(OpKind::UnitOp),
                    other => Err(DeError::msg(format!("unknown op kind `{other}`"))),
                },
                other => Err(DeError::msg(format!(
                    "expected op-kind string, got {other:?}"
                ))),
            }
        }
    }
}
