//! Topological ordering.

use std::collections::VecDeque;
use std::fmt;

use crate::{Cdfg, NodeId};

/// Error returned when a graph is not a DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoError {
    /// Nodes that remain on at least one cycle.
    pub cyclic_nodes: Vec<NodeId>,
}

impl fmt::Display for TopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph is cyclic; {} node(s) participate in cycles",
            self.cyclic_nodes.len()
        )
    }
}

impl std::error::Error for TopoError {}

/// Computes a topological order of the graph (Kahn's algorithm).
///
/// The order is deterministic: among ready nodes, the lowest id is emitted
/// first. Determinism matters because watermark embedding and detection must
/// derive identical node enumerations on both sides.
///
/// # Errors
///
/// Returns [`TopoError`] listing the nodes involved in cycles if the graph
/// is not a DAG.
///
/// ```
/// use localwm_cdfg::{topo_order, Cdfg, OpKind};
/// let mut g = Cdfg::new();
/// let a = g.add_node(OpKind::Input);
/// let b = g.add_node(OpKind::Not);
/// g.add_data_edge(a, b)?;
/// assert_eq!(topo_order(&g)?, vec![a, b]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn topo_order(g: &Cdfg) -> Result<Vec<NodeId>, TopoError> {
    let n = g.node_count();
    let mut in_deg = vec![0usize; n];
    for e in g.edges() {
        in_deg[e.dst().index()] += 1;
    }
    // A BinaryHeap would give strict smallest-first; a deque of a pre-sorted
    // seed plus in-order pushes is both deterministic and O(V + E). We use a
    // simple monotone frontier: collect ready nodes, sort, repeat per wave.
    let mut order = Vec::with_capacity(n);
    let mut ready: VecDeque<NodeId> = g.node_ids().filter(|id| in_deg[id.index()] == 0).collect();
    while let Some(u) = ready.pop_front() {
        order.push(u);
        let mut newly: Vec<NodeId> = Vec::new();
        for v in g.succs(u) {
            let d = &mut in_deg[v.index()];
            *d -= 1;
            if *d == 0 {
                newly.push(v);
            }
        }
        newly.sort_unstable();
        for v in newly {
            ready.push_back(v);
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        let mut cyclic: Vec<NodeId> = g.node_ids().filter(|id| in_deg[id.index()] > 0).collect();
        cyclic.sort_unstable();
        Err(TopoError {
            cyclic_nodes: cyclic,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeKind, OpKind};

    #[test]
    fn orders_a_chain() {
        let mut g = Cdfg::new();
        let a = g.add_node(OpKind::Input);
        let b = g.add_node(OpKind::Not);
        let c = g.add_node(OpKind::Output);
        g.add_data_edge(a, b).unwrap();
        g.add_data_edge(b, c).unwrap();
        assert_eq!(topo_order(&g).unwrap(), vec![a, b, c]);
    }

    #[test]
    fn respects_all_edge_kinds() {
        let mut g = Cdfg::new();
        let a = g.add_node(OpKind::UnitOp);
        let b = g.add_node(OpKind::UnitOp);
        g.add_edge(EdgeKind::Temporal, b, a).unwrap();
        let order = topo_order(&g).unwrap();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(b) < pos(a));
    }

    #[test]
    fn detects_cycles() {
        let mut g = Cdfg::new();
        let a = g.add_node(OpKind::UnitOp);
        let b = g.add_node(OpKind::UnitOp);
        g.add_edge(EdgeKind::Control, a, b).unwrap();
        g.add_edge(EdgeKind::Control, b, a).unwrap();
        let err = topo_order(&g).unwrap_err();
        assert_eq!(err.cyclic_nodes, vec![a, b]);
    }

    #[test]
    fn every_edge_is_respected_in_order() {
        // Deterministic layered graph.
        let mut g = Cdfg::new();
        let mut prev: Vec<NodeId> = (0..4).map(|_| g.add_node(OpKind::Input)).collect();
        for _ in 0..5 {
            let layer: Vec<NodeId> = (0..4).map(|_| g.add_node(OpKind::UnitOp)).collect();
            for (i, &n) in layer.iter().enumerate() {
                g.add_data_edge(prev[i % prev.len()], n).unwrap();
            }
            prev = layer;
        }
        let order = topo_order(&g).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.node_count()];
            for (i, n) in order.iter().enumerate() {
                p[n.index()] = i;
            }
            p
        };
        for e in g.edges() {
            assert!(pos[e.src().index()] < pos[e.dst().index()]);
        }
    }
}
