//! Fluent construction of CDFGs by name.

use crate::{Cdfg, CdfgError, NodeId, OpKind};

/// A convenience builder for constructing CDFGs with named nodes and
/// name-based edges.
///
/// The builder is non-consuming; [`CdfgBuilder::build`] validates and
/// returns the finished graph.
///
/// # Example
///
/// ```
/// use localwm_cdfg::{CdfgBuilder, OpKind};
///
/// let g = CdfgBuilder::new()
///     .node("x", OpKind::Input)
///     .node("c", OpKind::Const)
///     .node("m", OpKind::Mul)
///     .node("y", OpKind::Output)
///     .data("x", "m")
///     .data("c", "m")
///     .data("m", "y")
///     .build()?;
/// assert_eq!(g.node_count(), 4);
/// # Ok::<(), localwm_cdfg::CdfgError>(())
/// ```
#[derive(Debug, Default)]
pub struct CdfgBuilder {
    graph: Cdfg,
    pending_errors: Vec<CdfgError>,
}

impl CdfgBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a named node.
    #[must_use]
    pub fn node(mut self, name: &str, kind: OpKind) -> Self {
        if let Err(e) = self.graph.try_add_named_node(kind, name) {
            self.pending_errors.push(e);
        }
        self
    }

    fn resolve(&mut self, name: &str) -> Option<NodeId> {
        match self.graph.node_by_name(name) {
            Some(id) => Some(id),
            None => {
                self.pending_errors
                    .push(CdfgError::UnknownName(name.to_owned()));
                None
            }
        }
    }

    /// Adds a data edge between two named nodes.
    #[must_use]
    pub fn data(mut self, src: &str, dst: &str) -> Self {
        if let (Some(s), Some(d)) = (self.resolve(src), self.resolve(dst)) {
            if let Err(e) = self.graph.add_data_edge(s, d) {
                self.pending_errors.push(e);
            }
        }
        self
    }

    /// Adds a control edge between two named nodes.
    #[must_use]
    pub fn control(mut self, src: &str, dst: &str) -> Self {
        if let (Some(s), Some(d)) = (self.resolve(src), self.resolve(dst)) {
            if let Err(e) = self.graph.add_control_edge(s, d) {
                self.pending_errors.push(e);
            }
        }
        self
    }

    /// Adds a temporal edge between two named nodes.
    #[must_use]
    pub fn temporal(mut self, src: &str, dst: &str) -> Self {
        if let (Some(s), Some(d)) = (self.resolve(src), self.resolve(dst)) {
            if let Err(e) = self.graph.add_temporal_edge(s, d) {
                self.pending_errors.push(e);
            }
        }
        self
    }

    /// Finishes construction, validating the graph.
    ///
    /// # Errors
    ///
    /// Returns the first deferred construction error, or any validation
    /// failure from [`Cdfg::validate`].
    pub fn build(mut self) -> Result<Cdfg, CdfgError> {
        if let Some(e) = self.pending_errors.drain(..).next() {
            return Err(e);
        }
        self.graph.validate()?;
        Ok(self.graph)
    }

    /// Finishes construction without arity/DAG validation.
    ///
    /// Useful for intentionally partial graphs in tests.
    ///
    /// # Errors
    ///
    /// Returns the first deferred construction error, if any.
    pub fn build_unvalidated(mut self) -> Result<Cdfg, CdfgError> {
        if let Some(e) = self.pending_errors.drain(..).next() {
            return Err(e);
        }
        Ok(self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_valid_graph() {
        let g = CdfgBuilder::new()
            .node("a", OpKind::Input)
            .node("b", OpKind::Not)
            .data("a", "b")
            .build()
            .unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn unknown_name_is_reported() {
        let err = CdfgBuilder::new()
            .node("a", OpKind::Input)
            .data("a", "ghost")
            .build()
            .unwrap_err();
        assert_eq!(err, CdfgError::UnknownName("ghost".to_owned()));
    }

    #[test]
    fn duplicate_name_is_reported() {
        let err = CdfgBuilder::new()
            .node("a", OpKind::Input)
            .node("a", OpKind::Input)
            .build()
            .unwrap_err();
        assert_eq!(err, CdfgError::DuplicateName("a".to_owned()));
    }

    #[test]
    fn build_validates_arity() {
        let err = CdfgBuilder::new()
            .node("a", OpKind::Input)
            .node("s", OpKind::Add)
            .data("a", "s")
            .build()
            .unwrap_err();
        assert!(matches!(err, CdfgError::ArityMismatch { .. }));
    }

    #[test]
    fn build_unvalidated_skips_checks() {
        let g = CdfgBuilder::new()
            .node("s", OpKind::Add)
            .build_unvalidated()
            .unwrap();
        assert_eq!(g.node_count(), 1);
    }
}
