//! Fanin-cone analyses (criteria C2 and C3).

use std::collections::VecDeque;

use crate::{Cdfg, NodeId};

/// Returns all nodes in the transitive fanin tree of `n` with (shortest)
/// distance at most `max_dist` edges, *including `n` itself* at distance 0.
///
/// Nodes are returned in breadth-first order, ties broken by ascending node
/// id — the deterministic enumeration the watermark embedding and detection
/// sides must share.
///
/// ```
/// use localwm_cdfg::{analysis::fanin_within, Cdfg, OpKind};
/// let mut g = Cdfg::new();
/// let a = g.add_node(OpKind::Input);
/// let b = g.add_node(OpKind::Input);
/// let s = g.add_node(OpKind::Add);
/// g.add_data_edge(a, s)?;
/// g.add_data_edge(b, s)?;
/// assert_eq!(fanin_within(&g, s, 1), vec![s, a, b]);
/// assert_eq!(fanin_within(&g, s, 0), vec![s]);
/// # Ok::<(), localwm_cdfg::CdfgError>(())
/// ```
pub fn fanin_within(g: &Cdfg, n: NodeId, max_dist: u32) -> Vec<NodeId> {
    bfs_within(g, n, max_dist, Direction::Fanin)
}

/// Returns all nodes in the transitive *fanout* tree of `n` with distance at
/// most `max_dist`, including `n` itself. Breadth-first, id-ordered ties.
pub fn fanout_within(g: &Cdfg, n: NodeId, max_dist: u32) -> Vec<NodeId> {
    bfs_within(g, n, max_dist, Direction::Fanout)
}

#[derive(Clone, Copy)]
enum Direction {
    Fanin,
    Fanout,
}

fn bfs_within(g: &Cdfg, n: NodeId, max_dist: u32, dir: Direction) -> Vec<NodeId> {
    let mut seen = vec![false; g.node_count()];
    let mut out = Vec::new();
    let mut queue = VecDeque::new();
    seen[n.index()] = true;
    queue.push_back((n, 0u32));
    while let Some((u, d)) = queue.pop_front() {
        out.push(u);
        if d == max_dist {
            continue;
        }
        let mut next: Vec<NodeId> = match dir {
            Direction::Fanin => g.preds(u).filter(|p| !seen[p.index()]).collect(),
            Direction::Fanout => g.succs(u).filter(|s| !seen[s.index()]).collect(),
        };
        next.sort_unstable();
        next.dedup();
        for v in next {
            seen[v.index()] = true;
            queue.push_back((v, d + 1));
        }
    }
    out
}

/// Criterion C2: `K_i(x)`, the number of nodes in the transitive fanin tree
/// of `n` within max-distance `x` (excluding `n` itself, so that two nodes
/// with disjoint cones compare by cone size).
pub fn fanin_count(g: &Cdfg, n: NodeId, x: u32) -> usize {
    fanin_within(g, n, x).len() - 1
}

/// Criterion C3: `φ(n, x) = Σ f(n_a)` over every node `n_a` in the fanin
/// tree of `n` within max-distance `x` (including `n`), where `f` is the
/// unique functionality identifier of
/// [`OpKind::functionality_id`](crate::OpKind::functionality_id).
pub fn phi(g: &Cdfg, n: NodeId, x: u32) -> u64 {
    fanin_within(g, n, x)
        .iter()
        .map(|&m| u64::from(g.kind(m).functionality_id()))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    /// a   b
    ///  \ /
    ///   s1   c
    ///    \  /
    ///     s2
    fn tree() -> (Cdfg, [NodeId; 5]) {
        let mut g = Cdfg::new();
        let a = g.add_node(OpKind::Input);
        let b = g.add_node(OpKind::Input);
        let c = g.add_node(OpKind::Input);
        let s1 = g.add_node(OpKind::Add);
        let s2 = g.add_node(OpKind::Mul);
        g.add_data_edge(a, s1).unwrap();
        g.add_data_edge(b, s1).unwrap();
        g.add_data_edge(s1, s2).unwrap();
        g.add_data_edge(c, s2).unwrap();
        (g, [a, b, c, s1, s2])
    }

    #[test]
    fn fanin_respects_distance() {
        let (g, [a, b, c, s1, s2]) = tree();
        assert_eq!(fanin_within(&g, s2, 0), vec![s2]);
        assert_eq!(fanin_within(&g, s2, 1), vec![s2, c, s1]);
        assert_eq!(fanin_within(&g, s2, 2), vec![s2, c, s1, a, b]);
        assert_eq!(fanin_within(&g, s1, 5), vec![s1, a, b]);
    }

    #[test]
    fn fanin_count_excludes_self() {
        let (g, [.., s2]) = tree();
        assert_eq!(fanin_count(&g, s2, 0), 0);
        assert_eq!(fanin_count(&g, s2, 1), 2);
        assert_eq!(fanin_count(&g, s2, 2), 4);
    }

    #[test]
    fn phi_sums_functionality_ids() {
        let (g, [.., s1, s2]) = tree();
        // s1 is Add (1), inputs are 0.
        assert_eq!(phi(&g, s1, 1), 1);
        // s2 is Mul (2); distance 1 adds c (0) and s1 (1).
        assert_eq!(phi(&g, s2, 0), 2);
        assert_eq!(phi(&g, s2, 1), 3);
    }

    #[test]
    fn fanout_mirrors_fanin() {
        let (g, [a, _, _, s1, s2]) = tree();
        assert_eq!(fanout_within(&g, a, 1), vec![a, s1]);
        assert_eq!(fanout_within(&g, a, 2), vec![a, s1, s2]);
    }

    #[test]
    fn reconvergent_fanin_is_visited_once() {
        let mut g = Cdfg::new();
        let a = g.add_node(OpKind::Input);
        let x = g.add_node(OpKind::Not);
        let y = g.add_node(OpKind::Neg);
        let s = g.add_node(OpKind::Add);
        g.add_data_edge(a, x).unwrap();
        g.add_data_edge(a, y).unwrap();
        g.add_data_edge(x, s).unwrap();
        g.add_data_edge(y, s).unwrap();
        assert_eq!(fanin_within(&g, s, 2), vec![s, x, y, a]);
        assert_eq!(fanin_count(&g, s, 2), 3);
    }
}
