//! Design statistics: the structural profile watermark parameters are
//! tuned against.

use std::collections::BTreeMap;

use crate::analysis::{depth, longest_path_ops};
use crate::{Cdfg, OpKind};

/// A structural profile of a design.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignStats {
    /// Schedulable operation count (`N`).
    pub ops: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Live edges.
    pub edges: usize,
    /// Critical path, in control steps.
    pub critical_path: u32,
    /// Operations per kind, sorted by mnemonic.
    pub op_mix: BTreeMap<&'static str, usize>,
    /// Histogram of ASAP depths: `depth_histogram[d]` = ops whose earliest
    /// finish step is `d + 1`.
    pub depth_histogram: Vec<usize>,
    /// Average operations per control step at the tightest schedule
    /// (`ops / critical_path`) — the design's intrinsic parallelism.
    pub parallelism: f64,
}

impl DesignStats {
    /// Renders the profile as a small report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "ops {} | inputs {} | outputs {} | edges {} | critical path {} \
             | parallelism {:.1}\n",
            self.ops, self.inputs, self.outputs, self.edges, self.critical_path, self.parallelism,
        ));
        out.push_str("op mix:");
        for (k, v) in &self.op_mix {
            out.push_str(&format!(" {k}:{v}"));
        }
        out.push('\n');
        out
    }
}

/// Profiles a design.
///
/// # Panics
///
/// Panics if the graph is cyclic.
///
/// ```
/// use localwm_cdfg::analysis::design_stats;
/// use localwm_cdfg::designs::iir4_parallel;
/// let stats = design_stats(&iir4_parallel());
/// assert_eq!(stats.ops, 21);
/// assert_eq!(stats.critical_path, 6);
/// assert_eq!(stats.op_mix["add"], 9);
/// assert_eq!(stats.op_mix["cmul"], 8);
/// ```
pub fn design_stats(g: &Cdfg) -> DesignStats {
    let cp = longest_path_ops(g);
    let d = depth(g);
    let mut op_mix: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut inputs = 0;
    let mut outputs = 0;
    let mut ops = 0;
    let mut depth_histogram = vec![0usize; cp as usize + 1];
    for n in g.node_ids() {
        let kind = g.kind(n);
        match kind {
            OpKind::Input => inputs += 1,
            OpKind::Output => outputs += 1,
            _ if kind.is_schedulable() => {
                ops += 1;
                *op_mix.entry(kind.mnemonic()).or_insert(0) += 1;
                let bucket = (d[n.index()].saturating_sub(1)) as usize;
                depth_histogram[bucket.min(cp.saturating_sub(1) as usize)] += 1;
            }
            _ => {}
        }
    }
    DesignStats {
        ops,
        inputs,
        outputs,
        edges: g.edge_count(),
        critical_path: cp,
        op_mix,
        depth_histogram,
        parallelism: if cp == 0 {
            0.0
        } else {
            ops as f64 / f64::from(cp)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::iir4_parallel;
    use crate::generators::{mediabench, mediabench_apps};

    #[test]
    fn iir4_profile() {
        let s = design_stats(&iir4_parallel());
        assert_eq!(s.ops, 21);
        assert_eq!(s.inputs, 5);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.op_mix["delay"], 4);
        assert_eq!(s.depth_histogram.iter().sum::<usize>(), 21);
        assert!((s.parallelism - 3.5).abs() < 1e-12);
        assert!(s.render().contains("critical path 6"));
    }

    #[test]
    fn mediabench_profile_matches_mix_targets() {
        let g = mediabench(&mediabench_apps()[1], 0);
        let s = design_stats(&g);
        assert_eq!(s.ops, 758);
        // ~45% two-operand ALU of {add, sub, and, xor}.
        let alu: usize = ["add", "sub", "and", "xor"]
            .iter()
            .map(|k| s.op_mix.get(k).copied().unwrap_or(0))
            .sum();
        let frac = alu as f64 / s.ops as f64;
        assert!((0.3..0.6).contains(&frac), "alu fraction {frac}");
        assert!(s.parallelism > 4.0, "media kernels are ILP-rich");
    }

    #[test]
    fn empty_graph_profile() {
        let s = design_stats(&Cdfg::new());
        assert_eq!(s.ops, 0);
        assert_eq!(s.critical_path, 0);
        assert_eq!(s.parallelism, 0.0);
    }
}
