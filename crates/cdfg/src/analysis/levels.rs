//! Level (longest-path) analyses.

use crate::{Cdfg, NodeId};

/// Computes the paper's criterion-C1 *level* of every node with respect to a
/// root `n_o`: `L_i` is the length (in edges) of the longest path from `n_o`
/// to `n_i` traversed against edge direction — i.e. within `n_o`'s fanin
/// cone. Nodes outside the fanin cone of `root` get `None`.
///
/// Runs in `O(V + E)` using a reverse-topological relaxation.
///
/// ```
/// use localwm_cdfg::{analysis::levels_from, Cdfg, OpKind};
/// let mut g = Cdfg::new();
/// let a = g.add_node(OpKind::Input);
/// let b = g.add_node(OpKind::Not);
/// let c = g.add_node(OpKind::Output);
/// g.add_data_edge(a, b)?;
/// g.add_data_edge(b, c)?;
/// let levels = levels_from(&g, c);
/// assert_eq!(levels[a.index()], Some(2));
/// assert_eq!(levels[b.index()], Some(1));
/// assert_eq!(levels[c.index()], Some(0));
/// # Ok::<(), localwm_cdfg::CdfgError>(())
/// ```
///
/// # Panics
///
/// Panics if the graph is cyclic; validate first with
/// [`Cdfg::topo_order`](crate::Cdfg::topo_order).
pub fn levels_from(g: &Cdfg, root: NodeId) -> Vec<Option<u32>> {
    let order = g.topo_order().expect("levels_from requires a DAG");
    let mut level: Vec<Option<u32>> = vec![None; g.node_count()];
    level[root.index()] = Some(0);
    // Walk in reverse topological order: when we visit u, the level of all
    // of u's successors (closer to root) is final.
    for &u in order.iter().rev() {
        if u == root {
            continue;
        }
        let mut best: Option<u32> = None;
        for s in g.succs(u) {
            if let Some(ls) = level[s.index()] {
                best = Some(best.map_or(ls + 1, |b: u32| b.max(ls + 1)));
            }
        }
        level[u.index()] = best;
    }
    level
}

/// Length, in *operations*, of the longest source-to-sink path through the
/// graph — the paper's critical path `C` measured in control steps under the
/// homogeneous (unit-delay) SDF model. Non-schedulable nodes (inputs,
/// constants) contribute zero.
///
/// Returns 0 for an empty graph.
///
/// # Panics
///
/// Panics if the graph is cyclic.
pub fn longest_path_ops(g: &Cdfg) -> u32 {
    let order = g.topo_order().expect("longest_path_ops requires a DAG");
    let mut dist = vec![0u32; g.node_count()];
    let mut best = 0;
    for &u in &order {
        let here = dist[u.index()] + u32::from(g.kind(u).is_schedulable());
        best = best.max(here);
        for v in g.succs(u) {
            dist[v.index()] = dist[v.index()].max(here);
        }
    }
    best
}

/// Per-node depth: the number of schedulable operations on the longest path
/// *ending at* (and including) each node. `depth(n)` equals the earliest
/// control step at which `n` can finish — its ASAP finish time.
///
/// # Panics
///
/// Panics if the graph is cyclic.
pub fn depth(g: &Cdfg) -> Vec<u32> {
    let order = g.topo_order().expect("depth requires a DAG");
    let mut dist = vec![0u32; g.node_count()];
    for &u in &order {
        let here = dist[u.index()] + u32::from(g.kind(u).is_schedulable());
        dist[u.index()] = here;
        for v in g.succs(u) {
            dist[v.index()] = dist[v.index()].max(here);
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;

    /// in -> n1 -> n2 -> out, plus in -> n3 -> out
    fn two_paths() -> (Cdfg, [NodeId; 5]) {
        let mut g = Cdfg::new();
        let i = g.add_node(OpKind::Input);
        let n1 = g.add_node(OpKind::Not);
        let n2 = g.add_node(OpKind::Neg);
        let n3 = g.add_node(OpKind::Not);
        let o = g.add_node(OpKind::Add);
        g.add_data_edge(i, n1).unwrap();
        g.add_data_edge(n1, n2).unwrap();
        g.add_data_edge(i, n3).unwrap();
        g.add_data_edge(n2, o).unwrap();
        g.add_data_edge(n3, o).unwrap();
        (g, [i, n1, n2, n3, o])
    }

    #[test]
    fn levels_take_longest_path() {
        let (g, [i, n1, n2, n3, o]) = two_paths();
        let levels = levels_from(&g, o);
        assert_eq!(levels[o.index()], Some(0));
        assert_eq!(levels[n2.index()], Some(1));
        assert_eq!(levels[n3.index()], Some(1));
        assert_eq!(levels[n1.index()], Some(2));
        // Input reachable via both paths; longest is through n1/n2.
        assert_eq!(levels[i.index()], Some(3));
    }

    #[test]
    fn levels_outside_cone_are_none() {
        let (mut g, [_, n1, ..]) = two_paths();
        let stray = g.add_node(OpKind::UnitOp);
        let levels = levels_from(&g, n1);
        assert_eq!(levels[stray.index()], None);
    }

    #[test]
    fn critical_path_counts_operations() {
        let (g, _) = two_paths();
        // Longest chain of schedulable ops: n1, n2, o => 3 (input free).
        assert_eq!(longest_path_ops(&g), 3);
    }

    #[test]
    fn depth_is_asap_finish_time() {
        let (g, [i, n1, n2, n3, o]) = two_paths();
        let d = depth(&g);
        assert_eq!(d[i.index()], 0);
        assert_eq!(d[n1.index()], 1);
        assert_eq!(d[n2.index()], 2);
        assert_eq!(d[n3.index()], 1);
        assert_eq!(d[o.index()], 3);
    }

    #[test]
    fn empty_graph_has_zero_critical_path() {
        let g = Cdfg::new();
        assert_eq!(longest_path_ops(&g), 0);
    }
}
