//! Structural analyses used by domain selection and identification.
//!
//! The watermarking protocol sorts and selects nodes using three criteria
//! (paper §IV-A):
//!
//! * **C1** — the *level* `L_i`: length of the longest path from the chosen
//!   root `n_o` to `n_i` (traversed against edge direction, i.e. within the
//!   fanin cone). See [`levels_from`].
//! * **C2** — `K_i(x)`: the number of nodes in the transitive fanin tree of
//!   `n_i` within max-distance `x`. See [`fanin_count`].
//! * **C3** — `φ(n_i, x)`: the sum of functionality identifiers over that
//!   same fanin tree. See [`phi`].

mod fanin;
mod levels;
mod stats;

pub use fanin::{fanin_count, fanin_within, fanout_within, phi};
pub use levels::{depth, levels_from, longest_path_ops};
pub use stats::{design_stats, DesignStats};
