//! Per-design string interning: [`StrArena`] + [`Sym`].
//!
//! Node names used to be `Option<String>` on every [`Node`](crate::Node) —
//! one heap string per named node, plus a second copy in the graph's
//! name-lookup index. A [`Cdfg`](crate::Cdfg) now owns one [`StrArena`]:
//! all names live concatenated in a single growable buffer, a node stores
//! a [`Sym`] (a `u32` span index), and the lookup index maps name hashes
//! to symbols. Construction of an N-node design therefore does O(N)
//! *amortized* small allocations (buffer and span-table growth) instead of
//! two `String` allocations per name, and cloning a graph clones three
//! flat buffers instead of N strings.
//!
//! Interning is deduplicating: the same spelling interns to the same
//! `Sym`, so symbol equality is name equality *within one arena*. Symbols
//! are meaningless across arenas — resolve through the owning graph
//! ([`Cdfg::node_name`](crate::Cdfg::node_name)) before comparing across
//! designs. Round-trips are exact: the arena stores the bytes it was
//! given, so `intern` → [`StrArena::get`] returns the identical string
//! and textfmt/DOT/serde output is byte-identical to the `String`-field
//! representation.

use std::collections::HashMap;

/// An interned string: a dense index into its owning [`StrArena`].
///
/// `Sym`s are only meaningful against the arena that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

impl Sym {
    /// The dense arena index of this symbol.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A deduplicating append-only string arena; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct StrArena {
    /// Every interned string, concatenated.
    buf: String,
    /// `(start, end)` byte span of each symbol in `buf`.
    spans: Vec<(u32, u32)>,
    /// FNV-1a name hash → symbols with that hash (almost always one; the
    /// chain exists only for hash collisions, resolved by comparing bytes).
    index: HashMap<u64, Vec<Sym>>,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl StrArena {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// How many distinct strings are interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the arena is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Interns `s`, returning the existing symbol when the same spelling
    /// was interned before.
    ///
    /// # Panics
    ///
    /// Panics if the arena exceeds `u32::MAX` bytes or symbols (designs
    /// are orders of magnitude smaller).
    pub fn intern(&mut self, s: &str) -> Sym {
        let h = fnv1a(s.as_bytes());
        if let Some(chain) = self.index.get(&h) {
            for &sym in chain {
                if self.get(sym) == s {
                    return sym;
                }
            }
        }
        let start = u32::try_from(self.buf.len()).expect("arena byte overflow");
        self.buf.push_str(s);
        let end = u32::try_from(self.buf.len()).expect("arena byte overflow");
        let sym = Sym(u32::try_from(self.spans.len()).expect("arena symbol overflow"));
        self.spans.push((start, end));
        self.index.entry(h).or_default().push(sym);
        sym
    }

    /// The symbol `s` interns to, if it was interned.
    #[must_use]
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        let chain = self.index.get(&fnv1a(s.as_bytes()))?;
        chain.iter().copied().find(|&sym| self.get(sym) == s)
    }

    /// Resolves a symbol to its string.
    ///
    /// # Panics
    ///
    /// Panics on a symbol from a different arena whose index is out of
    /// range (an in-range foreign symbol resolves to the *wrong* string —
    /// symbols must stay with their arena).
    #[must_use]
    pub fn get(&self, sym: Sym) -> &str {
        let (start, end) = self.spans[sym.index()];
        &self.buf[start as usize..end as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_round_trips_exact_bytes() {
        let mut a = StrArena::new();
        let s1 = a.intern("A9");
        let s2 = a.intern("C3@2");
        let s3 = a.intern("");
        assert_eq!(a.get(s1), "A9");
        assert_eq!(a.get(s2), "C3@2");
        assert_eq!(a.get(s3), "");
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn interning_deduplicates() {
        let mut a = StrArena::new();
        let s1 = a.intern("A9");
        let s2 = a.intern("A9");
        assert_eq!(s1, s2);
        assert_eq!(a.len(), 1);
        assert_eq!(a.lookup("A9"), Some(s1));
        assert_eq!(a.lookup("A8"), None);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut a = StrArena::new();
        let mut syms = Vec::new();
        for i in 0..100 {
            syms.push(a.intern(&format!("n{i}")));
        }
        for (i, &s) in syms.iter().enumerate() {
            assert_eq!(a.get(s), format!("n{i}"));
        }
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn prefix_and_concat_confusions_are_impossible() {
        // "ab" then "a": the second is not a prefix-hit on the first's
        // span, and "b" was never interned even though its bytes exist.
        let mut a = StrArena::new();
        let ab = a.intern("ab");
        let just_a = a.intern("a");
        assert_ne!(ab, just_a);
        assert_eq!(a.get(ab), "ab");
        assert_eq!(a.get(just_a), "a");
        assert_eq!(a.lookup("b"), None);
    }
}
