//! The CDFG arena graph.

use std::collections::HashMap;

use crate::{CdfgError, EdgeId, NodeId, OpKind, StrArena, Sym};

/// The kind of a CDFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeKind {
    /// A data dependence: the destination consumes the value produced by the
    /// source. Imposes precedence: source is scheduled strictly before the
    /// destination.
    Data,
    /// A control dependence (e.g. a branch guarding an operation). Also
    /// imposes precedence.
    Control,
    /// A *temporal edge*: a pure precedence constraint carrying no value.
    /// Temporal edges are "standard nomenclature for behavioral descriptions"
    /// and are the constraint carrier of the scheduling watermark — they
    /// enforce that their source operation is scheduled before their
    /// destination operation.
    Temporal,
}

impl EdgeKind {
    /// Whether this edge kind carries a value (and therefore counts towards
    /// operand arity).
    pub fn carries_data(self) -> bool {
        matches!(self, EdgeKind::Data)
    }
}

/// A CDFG node: one operation.
///
/// Names are interned: a node stores an optional [`Sym`] into its graph's
/// [`StrArena`]; resolve it through [`Cdfg::node_name`] (or
/// [`Cdfg::sym_str`]) rather than the node alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    kind: OpKind,
    name: Option<Sym>,
    literal: Option<i64>,
}

impl Node {
    /// The operation performed by this node.
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// The interned symbol of the node's optional human-readable name
    /// (e.g. `A5`, `C3` in the paper's IIR example); resolve it with
    /// [`Cdfg::sym_str`] on the owning graph, or use [`Cdfg::node_name`]
    /// directly.
    pub fn name_sym(&self) -> Option<Sym> {
        self.name
    }

    /// The literal attached to the node: the value of a `Const`, or the
    /// coefficient of a `ConstMul`. Defaults to `None` (interpreters apply
    /// documented defaults).
    pub fn literal(&self) -> Option<i64> {
        self.literal
    }
}

/// A directed CDFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    kind: EdgeKind,
    src: NodeId,
    dst: NodeId,
}

impl Edge {
    /// The edge kind.
    pub fn kind(&self) -> EdgeKind {
        self.kind
    }

    /// Source node (scheduled before the destination).
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Destination node.
    pub fn dst(&self) -> NodeId {
        self.dst
    }
}

/// A control-data flow graph: a DAG of operations.
///
/// Nodes and edges live in arenas and are addressed by dense
/// [`NodeId`]/[`EdgeId`] indices. All mutation is append-only except
/// [`Cdfg::remove_edge`], which is needed to strip watermark constraints
/// after synthesis (removal tombstones the edge; ids of other edges remain
/// stable).
///
/// # Example
///
/// ```
/// use localwm_cdfg::{Cdfg, EdgeKind, OpKind};
///
/// let mut g = Cdfg::new();
/// let a = g.add_named_node(OpKind::Add, "A1");
/// let b = g.add_named_node(OpKind::Add, "A2");
/// let e = g.add_temporal_edge(a, b)?;
/// assert_eq!(g.edge(e).unwrap().kind(), EdgeKind::Temporal);
/// assert_eq!(g.node_by_name("A2"), Some(b));
/// # Ok::<(), localwm_cdfg::CdfgError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cdfg {
    nodes: Vec<Node>,
    edges: Vec<Option<Edge>>,
    out_edges: Vec<Vec<EdgeId>>,
    in_edges: Vec<Vec<EdgeId>>,
    /// All node names, interned once each.
    arena: StrArena,
    /// Name symbol → node. Keys resolve through `arena`.
    names: HashMap<Sym, NodeId>,
}

impl Cdfg {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with preallocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Cdfg {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            out_edges: Vec::with_capacity(nodes),
            in_edges: Vec::with_capacity(nodes),
            arena: StrArena::new(),
            names: HashMap::new(),
        }
    }

    /// Number of nodes (including sources/sinks).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live (non-removed) edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().filter(|e| e.is_some()).count()
    }

    /// Number of *operations*: schedulable nodes, the `N` of the paper's
    /// Table I (inputs and constants are excluded).
    pub fn op_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind.is_schedulable())
            .count()
    }

    /// Adds an anonymous node and returns its id.
    pub fn add_node(&mut self, kind: OpKind) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node {
            kind,
            name: None,
            literal: None,
        });
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        id
    }

    /// Attaches a literal (constant value / coefficient) to a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn set_literal(&mut self, id: NodeId, value: i64) {
        self.nodes[id.index()].literal = Some(value);
    }

    /// Adds a named node and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken; use [`Cdfg::try_add_named_node`]
    /// for a fallible variant.
    pub fn add_named_node(&mut self, kind: OpKind, name: impl AsRef<str>) -> NodeId {
        self.try_add_named_node(kind, name)
            .expect("duplicate node name")
    }

    /// Adds a named node, failing on duplicate names.
    ///
    /// # Errors
    ///
    /// Returns [`CdfgError::DuplicateName`] if a node with this name exists.
    pub fn try_add_named_node(
        &mut self,
        kind: OpKind,
        name: impl AsRef<str>,
    ) -> Result<NodeId, CdfgError> {
        let name = name.as_ref();
        // Every interned symbol belongs to exactly one named node, so a
        // lookup hit *is* the duplicate check.
        if self.arena.lookup(name).is_some() {
            return Err(CdfgError::DuplicateName(name.to_owned()));
        }
        let sym = self.arena.intern(name);
        let id = NodeId::from_index(self.nodes.len());
        self.names.insert(sym, id);
        self.nodes.push(Node {
            kind,
            name: Some(sym),
            literal: None,
        });
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        Ok(id)
    }

    /// Looks a node up by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        let sym = self.arena.lookup(name)?;
        self.names.get(&sym).copied()
    }

    /// The name of a node, resolved through the graph's intern arena;
    /// `None` for anonymous nodes and out-of-range ids.
    pub fn node_name(&self, id: NodeId) -> Option<&str> {
        self.nodes
            .get(id.index())
            .and_then(|n| n.name)
            .map(|s| self.arena.get(s))
    }

    /// Resolves an interned name symbol (from [`Node::name_sym`]) against
    /// this graph's arena.
    ///
    /// # Panics
    ///
    /// Panics if the symbol came from a different graph and is out of
    /// range there (see [`StrArena::get`]).
    pub fn sym_str(&self, sym: Sym) -> &str {
        self.arena.get(sym)
    }

    /// Returns the node payload, or `None` for an out-of-range id.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index())
    }

    /// Returns the operation kind of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn kind(&self, id: NodeId) -> OpKind {
        self.nodes[id.index()].kind
    }

    /// Returns the edge payload, or `None` for an out-of-range or removed id.
    pub fn edge(&self, id: EdgeId) -> Option<&Edge> {
        self.edges.get(id.index()).and_then(|e| e.as_ref())
    }

    fn check_node(&self, id: NodeId) -> Result<(), CdfgError> {
        if id.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(CdfgError::UnknownNode(id))
        }
    }

    /// Adds an edge of the given kind.
    ///
    /// # Errors
    ///
    /// Returns [`CdfgError::UnknownNode`] for out-of-range endpoints and
    /// [`CdfgError::SelfLoop`] when `src == dst`. Cycle creation is *not*
    /// checked here (it would make bulk construction quadratic); call
    /// [`crate::topo_order`] or [`Cdfg::add_edge_acyclic`] when that
    /// guarantee is needed.
    pub fn add_edge(
        &mut self,
        kind: EdgeKind,
        src: NodeId,
        dst: NodeId,
    ) -> Result<EdgeId, CdfgError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        if src == dst {
            return Err(CdfgError::SelfLoop(src));
        }
        let id = EdgeId::from_index(self.edges.len());
        self.edges.push(Some(Edge { kind, src, dst }));
        self.out_edges[src.index()].push(id);
        self.in_edges[dst.index()].push(id);
        Ok(id)
    }

    /// Adds a data edge (`src`'s value consumed by `dst`).
    ///
    /// # Errors
    ///
    /// See [`Cdfg::add_edge`].
    pub fn add_data_edge(&mut self, src: NodeId, dst: NodeId) -> Result<EdgeId, CdfgError> {
        self.add_edge(EdgeKind::Data, src, dst)
    }

    /// Adds a control edge.
    ///
    /// # Errors
    ///
    /// See [`Cdfg::add_edge`].
    pub fn add_control_edge(&mut self, src: NodeId, dst: NodeId) -> Result<EdgeId, CdfgError> {
        self.add_edge(EdgeKind::Control, src, dst)
    }

    /// Adds a temporal (watermark-constraint) edge.
    ///
    /// # Errors
    ///
    /// See [`Cdfg::add_edge`].
    pub fn add_temporal_edge(&mut self, src: NodeId, dst: NodeId) -> Result<EdgeId, CdfgError> {
        self.add_edge(EdgeKind::Temporal, src, dst)
    }

    /// Adds an edge, rejecting it if it would create a cycle.
    ///
    /// This is `O(V + E)` per call (it runs a reachability check from `dst`
    /// to `src`), so it is meant for incremental constraint insertion, not
    /// bulk construction.
    ///
    /// # Errors
    ///
    /// All of [`Cdfg::add_edge`]'s errors, plus [`CdfgError::WouldCycle`].
    pub fn add_edge_acyclic(
        &mut self,
        kind: EdgeKind,
        src: NodeId,
        dst: NodeId,
    ) -> Result<EdgeId, CdfgError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        if src == dst {
            return Err(CdfgError::SelfLoop(src));
        }
        if self.reaches(dst, src) {
            return Err(CdfgError::WouldCycle { src, dst });
        }
        self.add_edge(kind, src, dst)
    }

    /// Whether `to` is reachable from `from` along live edges.
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(n) = stack.pop() {
            for &eid in &self.out_edges[n.index()] {
                if let Some(e) = &self.edges[eid.index()] {
                    if e.dst == to {
                        return true;
                    }
                    if !seen[e.dst.index()] {
                        seen[e.dst.index()] = true;
                        stack.push(e.dst);
                    }
                }
            }
        }
        false
    }

    /// Removes an edge (tombstoning its id). Used to strip watermark
    /// constraints from the optimized specification after synthesis.
    ///
    /// # Errors
    ///
    /// Returns [`CdfgError::UnknownEdge`] if the edge does not exist or was
    /// already removed.
    pub fn remove_edge(&mut self, id: EdgeId) -> Result<Edge, CdfgError> {
        let slot = self
            .edges
            .get_mut(id.index())
            .ok_or(CdfgError::UnknownEdge(id))?;
        let edge = slot.take().ok_or(CdfgError::UnknownEdge(id))?;
        self.out_edges[edge.src.index()].retain(|&e| e != id);
        self.in_edges[edge.dst.index()].retain(|&e| e != id);
        Ok(edge)
    }

    /// Removes every temporal edge, returning how many were stripped.
    ///
    /// The watermarking flow adds temporal edges, runs the synthesis tool,
    /// then removes "the added constraints … from the optimized design
    /// specification".
    pub fn strip_temporal_edges(&mut self) -> usize {
        let ids: Vec<EdgeId> = self
            .edge_ids()
            .filter(|&e| {
                self.edges[e.index()]
                    .as_ref()
                    .is_some_and(|x| x.kind == EdgeKind::Temporal)
            })
            .collect();
        for id in &ids {
            let _ = self.remove_edge(*id);
        }
        ids.len()
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Iterator over all live edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_some())
            .map(|(i, _)| EdgeId::from_index(i))
    }

    /// Iterator over live edges.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> + '_ {
        self.edges.iter().filter_map(|e| e.as_ref())
    }

    /// Outgoing live edges of a node.
    pub fn out_edges(&self, n: NodeId) -> impl Iterator<Item = &Edge> + '_ {
        self.out_edges[n.index()]
            .iter()
            .filter_map(move |&eid| self.edges[eid.index()].as_ref())
    }

    /// Incoming live edges of a node.
    pub fn in_edges(&self, n: NodeId) -> impl Iterator<Item = &Edge> + '_ {
        self.in_edges[n.index()]
            .iter()
            .filter_map(move |&eid| self.edges[eid.index()].as_ref())
    }

    /// Successors across every edge kind (all impose precedence).
    pub fn succs(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges(n).map(|e| e.dst())
    }

    /// Predecessors across every edge kind.
    pub fn preds(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges(n).map(|e| e.src())
    }

    /// Data-only predecessors (operands).
    pub fn data_preds(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges(n)
            .filter(|e| e.kind().carries_data())
            .map(|e| e.src())
    }

    /// Data-only successors (consumers).
    pub fn data_succs(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges(n)
            .filter(|e| e.kind().carries_data())
            .map(|e| e.dst())
    }

    /// Number of incoming precedence edges.
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.in_edges(n).count()
    }

    /// Number of outgoing precedence edges.
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.out_edges(n).count()
    }

    /// Number of distinct data values ("variables" in the paper's Table II):
    /// one per node that produces a value consumed by at least one data edge,
    /// plus primary inputs.
    pub fn variable_count(&self) -> usize {
        self.node_ids()
            .filter(|&n| self.kind(n) == OpKind::Input || self.data_succs(n).next().is_some())
            .count()
    }

    /// Topological order over live edges.
    ///
    /// # Errors
    ///
    /// Returns [`CdfgError::Cyclic`] if the graph has a cycle.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, CdfgError> {
        crate::topo::topo_order(self).map_err(|_| CdfgError::Cyclic)
    }

    /// Validates structural invariants: acyclicity and data-operand arity.
    ///
    /// # Errors
    ///
    /// [`CdfgError::Cyclic`] or [`CdfgError::ArityMismatch`].
    pub fn validate(&self) -> Result<(), CdfgError> {
        self.topo_order()?;
        for n in self.node_ids() {
            let found = self.data_preds(n).count();
            if let Some(expected) = self.kind(n).arity() {
                if found != expected {
                    return Err(CdfgError::ArityMismatch {
                        node: n,
                        expected,
                        found,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Hand-written [`serde`] impls (the vendored offline serde stand-in has no
/// derive macros; see `vendor/README.md`).
///
/// A [`Cdfg`] serializes as `{"nodes": [...], "edges": [...]}` — removed
/// edges appear as `null` so edge ids stay stable across a round-trip. The
/// adjacency lists and the name index are derived data and are rebuilt on
/// deserialization.
#[cfg(feature = "serde")]
mod serde_impls {
    use super::{Cdfg, Edge, EdgeKind};
    use crate::EdgeId;
    use serde::{DeError, Deserialize, Serialize, Value};

    impl Serialize for EdgeKind {
        fn to_value(&self) -> Value {
            Value::Str(
                match self {
                    EdgeKind::Data => "Data",
                    EdgeKind::Control => "Control",
                    EdgeKind::Temporal => "Temporal",
                }
                .to_owned(),
            )
        }
    }

    impl Deserialize for EdgeKind {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            match v {
                Value::Str(s) => match s.as_str() {
                    "Data" => Ok(EdgeKind::Data),
                    "Control" => Ok(EdgeKind::Control),
                    "Temporal" => Ok(EdgeKind::Temporal),
                    other => Err(DeError::msg(format!("unknown edge kind `{other}`"))),
                },
                other => Err(DeError::msg(format!(
                    "expected edge-kind string, got {other:?}"
                ))),
            }
        }
    }

    impl Serialize for Edge {
        fn to_value(&self) -> Value {
            Value::Object(vec![
                ("kind".to_owned(), self.kind.to_value()),
                ("src".to_owned(), self.src.to_value()),
                ("dst".to_owned(), self.dst.to_value()),
            ])
        }
    }

    impl Deserialize for Edge {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            let field = |name: &str| {
                v.field(name)
                    .ok_or_else(|| DeError::msg(format!("edge missing `{name}`")))
            };
            Ok(Edge {
                kind: Deserialize::from_value(field("kind")?)?,
                src: Deserialize::from_value(field("src")?)?,
                dst: Deserialize::from_value(field("dst")?)?,
            })
        }
    }

    impl Serialize for Cdfg {
        fn to_value(&self) -> Value {
            // Nodes serialize inline (not via a `Serialize for Node`) so
            // interned name symbols resolve through the arena; the bytes
            // are identical to the former `Option<String>` field.
            let nodes: Vec<Value> = self
                .nodes
                .iter()
                .map(|n| {
                    Value::Object(vec![
                        ("kind".to_owned(), n.kind.to_value()),
                        (
                            "name".to_owned(),
                            match n.name {
                                Some(sym) => Value::Str(self.arena.get(sym).to_owned()),
                                None => Value::Null,
                            },
                        ),
                        ("literal".to_owned(), n.literal.to_value()),
                    ])
                })
                .collect();
            Value::Object(vec![
                ("nodes".to_owned(), Value::Array(nodes)),
                ("edges".to_owned(), self.edges.to_value()),
            ])
        }
    }

    impl Deserialize for Cdfg {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            let Some(Value::Array(nodes_v)) = v.field("nodes") else {
                return Err(DeError::msg("cdfg missing `nodes`"));
            };
            let edges: Vec<Option<Edge>> = Deserialize::from_value(
                v.field("edges")
                    .ok_or_else(|| DeError::msg("cdfg missing `edges`"))?,
            )?;
            let mut g = Cdfg::with_capacity(nodes_v.len(), edges.len());
            for nv in nodes_v {
                let field = |name: &str| {
                    nv.field(name)
                        .ok_or_else(|| DeError::msg(format!("node missing `{name}`")))
                };
                let kind = Deserialize::from_value(field("kind")?)?;
                let id = match field("name")? {
                    Value::Null => g.add_node(kind),
                    Value::Str(name) => g
                        .try_add_named_node(kind, name)
                        .map_err(|_| DeError::msg(format!("duplicate node name `{name}`")))?,
                    other => {
                        return Err(DeError::msg(format!(
                            "expected node-name string or null, got {other:?}"
                        )))
                    }
                };
                let literal: Option<i64> = Deserialize::from_value(field("literal")?)?;
                if let Some(lit) = literal {
                    g.set_literal(id, lit);
                }
            }
            g.edges = edges;
            for (ei, e) in g.edges.iter().enumerate() {
                let Some(e) = e else { continue };
                if e.src.index() >= g.nodes.len() || e.dst.index() >= g.nodes.len() {
                    return Err(DeError::msg(format!("edge {ei} endpoint out of range")));
                }
                g.out_edges[e.src.index()].push(EdgeId::from_index(ei));
                g.in_edges[e.dst.index()].push(EdgeId::from_index(ei));
            }
            Ok(g)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Cdfg, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Cdfg::new();
        let a = g.add_node(OpKind::Input);
        let b = g.add_node(OpKind::Not);
        let c = g.add_node(OpKind::Neg);
        let d = g.add_node(OpKind::Add);
        g.add_data_edge(a, b).unwrap();
        g.add_data_edge(a, c).unwrap();
        g.add_data_edge(b, d).unwrap();
        g.add_data_edge(c, d).unwrap();
        (g, a, b, c, d)
    }

    #[test]
    fn counts_and_degrees() {
        let (g, a, _, _, d) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.op_count(), 3);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Cdfg::new();
        let a = g.add_node(OpKind::Add);
        assert_eq!(g.add_data_edge(a, a), Err(CdfgError::SelfLoop(a)));
    }

    #[test]
    fn unknown_node_rejected() {
        let mut g = Cdfg::new();
        let a = g.add_node(OpKind::Add);
        let ghost = NodeId::from_index(99);
        assert_eq!(
            g.add_data_edge(a, ghost),
            Err(CdfgError::UnknownNode(ghost))
        );
    }

    #[test]
    fn reachability() {
        let (g, a, b, _, d) = diamond();
        assert!(g.reaches(a, d));
        assert!(g.reaches(b, d));
        assert!(!g.reaches(d, a));
    }

    #[test]
    fn acyclic_insertion_rejects_back_edge() {
        let (mut g, a, _, _, d) = diamond();
        let err = g.add_edge_acyclic(EdgeKind::Temporal, d, a).unwrap_err();
        assert_eq!(err, CdfgError::WouldCycle { src: d, dst: a });
        // Forward temporal edge is fine.
        assert!(g.add_edge_acyclic(EdgeKind::Temporal, a, d).is_ok());
    }

    #[test]
    fn remove_edge_tombstones() {
        let (mut g, a, b, _, _) = diamond();
        let eid = g
            .edge_ids()
            .find(|&e| {
                let edge = g.edge(e).unwrap();
                edge.src() == a && edge.dst() == b
            })
            .unwrap();
        let removed = g.remove_edge(eid).unwrap();
        assert_eq!(removed.src(), a);
        assert_eq!(g.edge(eid), None);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.remove_edge(eid), Err(CdfgError::UnknownEdge(eid)));
    }

    #[test]
    fn strip_temporal_edges_removes_only_temporal() {
        let (mut g, a, b, c, d) = diamond();
        g.add_temporal_edge(b, c).unwrap();
        g.add_temporal_edge(a, d).unwrap();
        assert_eq!(g.strip_temporal_edges(), 2);
        assert_eq!(g.edge_count(), 4);
        assert!(g.edges().all(|e| e.kind() == EdgeKind::Data));
    }

    #[test]
    fn named_nodes_resolve() {
        let mut g = Cdfg::new();
        let a = g.add_named_node(OpKind::Add, "A1");
        assert_eq!(g.node_by_name("A1"), Some(a));
        assert_eq!(g.node_name(a), Some("A1"));
        let sym = g.node(a).unwrap().name_sym().expect("named");
        assert_eq!(g.sym_str(sym), "A1");
        assert!(g.try_add_named_node(OpKind::Add, "A1").is_err());
    }

    #[test]
    fn validate_checks_arity() {
        let mut g = Cdfg::new();
        let a = g.add_node(OpKind::Input);
        let add = g.add_node(OpKind::Add);
        g.add_data_edge(a, add).unwrap();
        let err = g.validate().unwrap_err();
        assert!(matches!(
            err,
            CdfgError::ArityMismatch {
                expected: 2,
                found: 1,
                ..
            }
        ));
        let b = g.add_node(OpKind::Input);
        g.add_data_edge(b, add).unwrap();
        assert!(g.validate().is_ok());
    }

    #[test]
    fn variable_count_counts_value_producers() {
        let (g, ..) = diamond();
        // a, b, c produce consumed values; d's output is unconsumed.
        assert_eq!(g.variable_count(), 3);
    }

    #[test]
    fn temporal_edges_do_not_affect_arity() {
        let mut g = Cdfg::new();
        let a = g.add_node(OpKind::Input);
        let b = g.add_node(OpKind::Input);
        let add = g.add_node(OpKind::Add);
        g.add_data_edge(a, add).unwrap();
        g.add_data_edge(b, add).unwrap();
        let x = g.add_node(OpKind::Not);
        g.add_data_edge(a, x).unwrap();
        g.add_temporal_edge(x, add).unwrap();
        assert!(g.validate().is_ok());
        assert_eq!(g.data_preds(add).count(), 2);
        assert_eq!(g.preds(add).count(), 3);
    }
}
