//! Synthetic CDFG generators.
//!
//! * [`mediabench`] — MediaBench-scale graphs with the exact op counts of
//!   the paper's Table I (the C sources + IMPACT compiler pipeline is
//!   substituted by a structure-matched generator; see `DESIGN.md` §4).
//! * [`random_dag`] — small random DAGs for property-based testing.
//! * [`layered`] — a tunable layered-DAG generator underlying both.

mod layered;
mod mediabench;
mod random;

pub use layered::{layered, LayeredConfig};
pub use mediabench::{mediabench, mediabench_apps, MediabenchApp};
pub use random::random_dag;
