//! MediaBench-scale application graphs (Table I workloads).

use crate::generators::{layered, LayeredConfig};
use crate::Cdfg;

/// Descriptor of one Table I application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MediabenchApp {
    /// Application name as printed in the paper.
    pub name: &'static str,
    /// Published operation count `N`.
    pub ops: usize,
}

/// The eight Table I applications with their published op counts.
pub fn mediabench_apps() -> [MediabenchApp; 8] {
    [
        MediabenchApp {
            name: "D/A Cnv.",
            ops: 528,
        },
        MediabenchApp {
            name: "G721",
            ops: 758,
        },
        MediabenchApp {
            name: "epic",
            ops: 872,
        },
        MediabenchApp {
            name: "PEGWIT",
            ops: 658,
        },
        MediabenchApp {
            name: "PGP",
            ops: 1755,
        },
        MediabenchApp {
            name: "GSM",
            ops: 802,
        },
        MediabenchApp {
            name: "JPEG.c",
            ops: 1422,
        },
        MediabenchApp {
            name: "MPEG2.d",
            ops: 1372,
        },
    ]
}

/// Generates a CDFG standing in for one MediaBench application.
///
/// The graph has **exactly** the published operation count. Depth scales
/// like `√N` (media kernels expose abundant instruction-level parallelism,
/// so the critical path is far shorter than the op count) and the op mix is
/// ~45 % two-operand ALU, ~25 % multiply, ~15 % memory, ~10 % compare/shift
/// and ~5 % unary ops.
///
/// `seed` varies the draw; embedding experiments average over seeds.
///
/// ```
/// use localwm_cdfg::generators::{mediabench, mediabench_apps};
/// let app = mediabench_apps()[1]; // G721
/// let g = mediabench(&app, 0);
/// assert_eq!(g.op_count(), 758);
/// ```
pub fn mediabench(app: &MediabenchApp, seed: u64) -> Cdfg {
    let layers = ((app.ops as f64).sqrt() * 1.2).round() as usize;
    layered(&LayeredConfig {
        ops: app.ops,
        layers: layers.clamp(4, app.ops),
        inputs: 16,
        locality: 4,
        mix: (45, 25, 15, 10, 5),
        fresh_prob: 0.4,
        seed: seed.wrapping_add(0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(app.ops as u64)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::longest_path_ops;

    #[test]
    fn all_apps_match_published_op_counts() {
        for app in mediabench_apps() {
            let g = mediabench(&app, 0);
            assert_eq!(g.op_count(), app.ops, "{}", app.name);
            assert!(g.validate().is_ok(), "{}", app.name);
        }
    }

    #[test]
    fn graphs_have_substantial_slack() {
        // The watermark needs operations with overlapping ASAP/ALAP windows;
        // that requires critical path << op count.
        for app in mediabench_apps().iter().take(3) {
            let g = mediabench(app, 0);
            let cp = longest_path_ops(&g) as usize;
            assert!(
                cp * 4 < app.ops,
                "{}: cp {} too long for {} ops",
                app.name,
                cp,
                app.ops
            );
        }
    }

    #[test]
    fn seeds_produce_distinct_graphs() {
        let app = mediabench_apps()[0];
        let a = mediabench(&app, 0);
        let b = mediabench(&app, 1);
        let ea: Vec<_> = a.edges().map(|e| (e.src(), e.dst())).collect();
        let eb: Vec<_> = b.edges().map(|e| (e.src(), e.dst())).collect();
        assert_ne!(ea, eb);
    }
}
