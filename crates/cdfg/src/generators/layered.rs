//! Layered random DAG generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Cdfg, NodeId, OpKind};

/// Configuration for the layered generator.
#[derive(Debug, Clone, PartialEq)]
pub struct LayeredConfig {
    /// Number of schedulable operations to generate (exactly).
    pub ops: usize,
    /// Number of layers the operations are spread across. Controls the
    /// critical path (≈ `layers`) and therefore the average scheduling
    /// slack: media kernels have `ops ≫ layers`.
    pub layers: usize,
    /// Number of primary inputs feeding layer 1.
    pub inputs: usize,
    /// How many preceding layers an operand may come from (locality
    /// window). 1 = strictly layer-to-layer; larger values create slack
    /// spread.
    pub locality: usize,
    /// Relative weights of the generated op mix:
    /// `(alu2, mul, mem, cmp, unary)` where `alu2` covers two-operand
    /// add/sub/logic, `mem` covers load/store, `cmp` covers compares and
    /// shifts, `unary` covers not/neg.
    pub mix: (u32, u32, u32, u32, u32),
    /// Probability that an operand comes from a primary input instead of a
    /// recent layer. Fresh operands start new short dependence chains,
    /// giving the graph the laxity diversity of real compiled kernels
    /// (expression trees restart at loads/constants all the time). 0 makes
    /// every node near-critical; ~0.4 matches media-kernel texture.
    pub fresh_prob: f64,
    /// RNG seed; the generator is fully deterministic given the config.
    pub seed: u64,
}

impl Default for LayeredConfig {
    fn default() -> Self {
        LayeredConfig {
            ops: 200,
            layers: 20,
            inputs: 8,
            locality: 3,
            mix: (45, 25, 15, 10, 5),
            fresh_prob: 0.4,
            seed: 0,
        }
    }
}

/// Generates a layered random DAG.
///
/// Exactly `cfg.ops` schedulable operations are produced, spread uniformly
/// over `cfg.layers` layers. Each operation draws its operands uniformly
/// from the previous `cfg.locality` layers (or the primary inputs), which
/// yields the mix of tight chains and wide, slack-rich regions typical of
/// compiled media kernels.
///
/// Dangling values (produced but never consumed) are terminated with
/// `Output` nodes so the graph is a complete specification.
///
/// ```
/// use localwm_cdfg::generators::{layered, LayeredConfig};
/// let g = layered(&LayeredConfig { ops: 100, ..Default::default() });
/// assert_eq!(g.op_count(), 100);
/// assert!(g.validate().is_ok());
/// ```
///
/// # Panics
///
/// Panics if `ops`, `layers` or `inputs` is zero, or `layers > ops`.
pub fn layered(cfg: &LayeredConfig) -> Cdfg {
    assert!(
        (0.0..=1.0).contains(&cfg.fresh_prob),
        "fresh_prob must be a probability"
    );
    assert!(cfg.ops > 0, "ops must be positive");
    assert!(cfg.layers > 0, "layers must be positive");
    assert!(cfg.inputs > 0, "inputs must be positive");
    assert!(cfg.layers <= cfg.ops, "cannot have more layers than ops");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut g = Cdfg::with_capacity(cfg.ops + cfg.inputs, cfg.ops * 2);

    let inputs: Vec<NodeId> = (0..cfg.inputs).map(|_| g.add_node(OpKind::Input)).collect();
    let mut layers: Vec<Vec<NodeId>> = vec![inputs];

    // Distribute ops over layers as evenly as possible, remainder spread
    // over the earliest layers (wider near the inputs, like real kernels).
    let base = cfg.ops / cfg.layers;
    let extra = cfg.ops % cfg.layers;

    let total_weight = cfg.mix.0 + cfg.mix.1 + cfg.mix.2 + cfg.mix.3 + cfg.mix.4;
    assert!(total_weight > 0, "op mix weights must not all be zero");

    for layer_idx in 0..cfg.layers {
        let count = base + usize::from(layer_idx < extra);
        let mut layer = Vec::with_capacity(count);
        for _ in 0..count {
            let kind = pick_kind(&mut rng, cfg.mix, total_weight);
            let n = g.add_node(kind);
            let arity = kind.arity().expect("generated kinds have fixed arity");
            for _ in 0..arity {
                let src = if rng.gen_bool(cfg.fresh_prob) {
                    layers[0][rng.gen_range(0..layers[0].len())]
                } else {
                    pick_operand(&mut rng, &layers, cfg.locality)
                };
                g.add_data_edge(src, n).expect("layered edges are acyclic");
            }
            layer.push(n);
        }
        layers.push(layer);
    }

    // Terminate dangling values.
    let dangling: Vec<NodeId> = g
        .node_ids()
        .filter(|&n| !g.kind(n).is_sink() && g.data_succs(n).next().is_none())
        .collect();
    for n in dangling {
        let o = g.add_node(OpKind::Output);
        g.add_data_edge(n, o).expect("valid edge");
    }
    g
}

fn pick_kind(rng: &mut StdRng, mix: (u32, u32, u32, u32, u32), total: u32) -> OpKind {
    let r = rng.gen_range(0..total);
    let (alu2, mul, mem, cmp, _) = mix;
    if r < alu2 {
        match rng.gen_range(0..4) {
            0 => OpKind::Add,
            1 => OpKind::Sub,
            2 => OpKind::And,
            _ => OpKind::Xor,
        }
    } else if r < alu2 + mul {
        OpKind::Mul
    } else if r < alu2 + mul + mem {
        if rng.gen_bool(0.7) {
            OpKind::Load
        } else {
            OpKind::Store
        }
    } else if r < alu2 + mul + mem + cmp {
        match rng.gen_range(0..3) {
            0 => OpKind::Lt,
            1 => OpKind::Eq,
            _ => OpKind::Shl,
        }
    } else {
        if rng.gen_bool(0.5) {
            OpKind::Not
        } else {
            OpKind::Neg
        }
    }
}

fn pick_operand(rng: &mut StdRng, layers: &[Vec<NodeId>], locality: usize) -> NodeId {
    let lo = layers.len().saturating_sub(locality.max(1));
    // Candidate layers [lo, len); all are non-empty by construction.
    let layer = rng.gen_range(lo..layers.len());
    let layer = &layers[layer];
    layer[rng.gen_range(0..layer.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::longest_path_ops;

    #[test]
    fn exact_op_count() {
        for ops in [1usize, 7, 64, 333] {
            let cfg = LayeredConfig {
                ops,
                layers: ops.min(10),
                ..Default::default()
            };
            let g = layered(&cfg);
            assert_eq!(g.op_count(), ops);
            assert!(g.validate().is_ok());
        }
    }

    #[test]
    fn critical_path_bounded_by_layers() {
        let cfg = LayeredConfig {
            ops: 300,
            layers: 15,
            ..Default::default()
        };
        let g = layered(&cfg);
        assert!(longest_path_ops(&g) <= 15);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = LayeredConfig::default();
        let a = layered(&cfg);
        let b = layered(&cfg);
        assert_eq!(a.node_count(), b.node_count());
        let ea: Vec<_> = a.edges().map(|e| (e.src(), e.dst())).collect();
        let eb: Vec<_> = b.edges().map(|e| (e.src(), e.dst())).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = layered(&LayeredConfig {
            seed: 1,
            ..Default::default()
        });
        let b = layered(&LayeredConfig {
            seed: 2,
            ..Default::default()
        });
        let ea: Vec<_> = a.edges().map(|e| (e.src(), e.dst())).collect();
        let eb: Vec<_> = b.edges().map(|e| (e.src(), e.dst())).collect();
        assert_ne!(ea, eb);
    }

    #[test]
    #[should_panic(expected = "layers must be positive")]
    fn zero_layers_panics() {
        let _ = layered(&LayeredConfig {
            layers: 0,
            ..Default::default()
        });
    }
}
