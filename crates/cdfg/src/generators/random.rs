//! Unstructured random DAGs for property-based testing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Cdfg, NodeId, OpKind};

/// Generates a random DAG of `n` nodes where each forward pair `(i, j)`,
/// `i < j`, is connected with probability `edge_prob`.
///
/// Nodes are `UnitOp`s (arity is *not* enforced — these graphs exercise
/// graph algorithms, not operation semantics) except that nodes with no
/// incoming edge are retyped as inputs. Deterministic for a fixed seed.
///
/// ```
/// use localwm_cdfg::generators::random_dag;
/// let g = random_dag(20, 0.2, 42);
/// assert_eq!(g.node_count(), 20);
/// assert!(g.topo_order().is_ok());
/// ```
///
/// # Panics
///
/// Panics if `edge_prob` is not within `[0, 1]`.
pub fn random_dag(n: usize, edge_prob: f64, seed: u64) -> Cdfg {
    assert!(
        (0.0..=1.0).contains(&edge_prob),
        "edge_prob must be a probability"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Cdfg::with_capacity(n, (n * n / 4).min(4096));
    let ids: Vec<NodeId> = (0..n).map(|_| g.add_node(OpKind::UnitOp)).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(edge_prob) {
                g.add_data_edge(ids[i], ids[j]).expect("forward edge");
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_acyclic() {
        for seed in 0..20 {
            let g = random_dag(30, 0.3, seed);
            assert!(g.topo_order().is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn edge_prob_extremes() {
        let empty = random_dag(10, 0.0, 0);
        assert_eq!(empty.edge_count(), 0);
        let full = random_dag(10, 1.0, 0);
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    #[should_panic(expected = "edge_prob must be a probability")]
    fn invalid_probability_panics() {
        let _ = random_dag(5, 1.5, 0);
    }
}
