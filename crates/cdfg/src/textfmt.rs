//! A minimal line-oriented text format for CDFGs.
//!
//! The format mirrors classic academic netlist formats (one declaration per
//! line) and exists so examples and tests can ship designs as plain text:
//!
//! ```text
//! # comment
//! node <name> <mnemonic>
//! data <src> <dst>
//! ctrl <src> <dst>
//! temp <src> <dst>
//! ```

use crate::{Cdfg, CdfgError, OpKind};

/// Serializes a graph to the text format. Anonymous nodes are given
/// synthetic `n<i>` names.
///
/// ```
/// use localwm_cdfg::{parse_cdfg, write_cdfg, Cdfg, OpKind};
/// let mut g = Cdfg::new();
/// let a = g.add_named_node(OpKind::Input, "x");
/// let b = g.add_named_node(OpKind::Output, "y");
/// g.add_data_edge(a, b)?;
/// let text = write_cdfg(&g);
/// let g2 = parse_cdfg(&text)?;
/// assert_eq!(g2.node_count(), 2);
/// assert_eq!(g2.edge_count(), 1);
/// # Ok::<(), localwm_cdfg::CdfgError>(())
/// ```
pub fn write_cdfg(g: &Cdfg) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    // Names resolve straight out of the intern arena; anonymous nodes
    // render their synthetic name in place — no per-name String.
    let push_name = |out: &mut String, id: crate::NodeId| match g.node_name(id) {
        Some(n) => out.push_str(n),
        None => {
            let _ = write!(out, "n{}", id.index());
        }
    };
    for id in g.node_ids() {
        let node = g.node(id).expect("id in range");
        out.push_str("node ");
        push_name(&mut out, id);
        let _ = writeln!(out, " {}", node.kind());
    }
    for e in g.edges() {
        let tag = match e.kind() {
            crate::EdgeKind::Data => "data ",
            crate::EdgeKind::Control => "ctrl ",
            crate::EdgeKind::Temporal => "temp ",
        };
        out.push_str(tag);
        push_name(&mut out, e.src());
        out.push(' ');
        push_name(&mut out, e.dst());
        out.push('\n');
    }
    out
}

/// Parses the text format back into a graph.
///
/// # Errors
///
/// Returns [`CdfgError::Parse`] for malformed lines,
/// [`CdfgError::DuplicateName`]/[`CdfgError::UnknownName`] for name
/// problems, and validation errors from [`Cdfg::validate`].
pub fn parse_cdfg(text: &str) -> Result<Cdfg, CdfgError> {
    let mut g = Cdfg::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let head = parts.next().expect("non-empty line has a token");
        match head {
            "node" => {
                let (name, kind) = match (parts.next(), parts.next(), parts.next()) {
                    (Some(n), Some(k), None) => (n, k),
                    _ => {
                        return Err(CdfgError::Parse {
                            line: lineno,
                            message: "expected `node <name> <kind>`".to_owned(),
                        })
                    }
                };
                let kind: OpKind = kind.parse().map_err(|e| CdfgError::Parse {
                    line: lineno,
                    message: format!("{e}"),
                })?;
                g.try_add_named_node(kind, name)?;
            }
            "data" | "ctrl" | "temp" => {
                let (src, dst) = match (parts.next(), parts.next(), parts.next()) {
                    (Some(s), Some(d), None) => (s, d),
                    _ => {
                        return Err(CdfgError::Parse {
                            line: lineno,
                            message: format!("expected `{head} <src> <dst>`"),
                        })
                    }
                };
                let s = g
                    .node_by_name(src)
                    .ok_or_else(|| CdfgError::UnknownName(src.to_owned()))?;
                let d = g
                    .node_by_name(dst)
                    .ok_or_else(|| CdfgError::UnknownName(dst.to_owned()))?;
                match head {
                    "data" => g.add_data_edge(s, d)?,
                    "ctrl" => g.add_control_edge(s, d)?,
                    _ => g.add_temporal_edge(s, d)?,
                };
            }
            other => {
                return Err(CdfgError::Parse {
                    line: lineno,
                    message: format!("unknown directive `{other}`"),
                })
            }
        }
    }
    g.validate()?;
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeKind;

    #[test]
    fn parses_comments_and_blank_lines() {
        let g = parse_cdfg("# hello\n\nnode a in\nnode b out\ndata a b\n").unwrap();
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn round_trips_all_edge_kinds() {
        let mut g = Cdfg::new();
        let a = g.add_named_node(OpKind::Input, "a");
        let b = g.add_named_node(OpKind::UnitOp, "b");
        let c = g.add_named_node(OpKind::Output, "c");
        g.add_data_edge(a, b).unwrap();
        g.add_data_edge(b, c).unwrap();
        g.add_temporal_edge(a, c).unwrap();
        let text = write_cdfg(&g);
        let g2 = parse_cdfg(&text).unwrap();
        assert_eq!(g2.edge_count(), 3);
        assert_eq!(
            g2.edges()
                .filter(|e| e.kind() == EdgeKind::Temporal)
                .count(),
            1
        );
    }

    #[test]
    fn bad_directive_reports_line() {
        let err = parse_cdfg("node a in\nfrobnicate a\n").unwrap_err();
        assert!(matches!(err, CdfgError::Parse { line: 2, .. }));
    }

    #[test]
    fn bad_kind_reports_line() {
        let err = parse_cdfg("node a warp\n").unwrap_err();
        assert!(matches!(err, CdfgError::Parse { line: 1, .. }));
    }

    #[test]
    fn unknown_edge_endpoint_is_rejected() {
        let err = parse_cdfg("node a in\ndata a ghost\n").unwrap_err();
        assert_eq!(err, CdfgError::UnknownName("ghost".to_owned()));
    }

    #[test]
    fn parse_validates_graph() {
        // Add with a single operand fails arity validation.
        let err = parse_cdfg("node a in\nnode s add\ndata a s\n").unwrap_err();
        assert!(matches!(err, CdfgError::ArityMismatch { .. }));
    }
}
