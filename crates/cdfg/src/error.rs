//! Crate error type.

use std::fmt;

use crate::{EdgeId, NodeId};

/// Errors produced while constructing or validating a CDFG.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CdfgError {
    /// A referenced node id does not exist in the graph.
    UnknownNode(NodeId),
    /// A referenced edge id does not exist in the graph.
    UnknownEdge(EdgeId),
    /// A self loop was requested (`src == dst`), which is never a valid
    /// precedence in a DAG.
    SelfLoop(NodeId),
    /// Adding the edge would create a cycle.
    WouldCycle {
        /// Source of the offending edge.
        src: NodeId,
        /// Destination of the offending edge.
        dst: NodeId,
    },
    /// The graph contains a cycle (detected during validation or
    /// topological sorting).
    Cyclic,
    /// A node has the wrong number of data operands.
    ArityMismatch {
        /// The offending node.
        node: NodeId,
        /// Operands expected by the operation kind.
        expected: usize,
        /// Operands actually connected.
        found: usize,
    },
    /// A named node was referenced but never defined (builder / parser).
    UnknownName(String),
    /// A node name was defined twice (builder / parser).
    DuplicateName(String),
    /// The text format was malformed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for CdfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdfgError::UnknownNode(n) => write!(f, "unknown node {n}"),
            CdfgError::UnknownEdge(e) => write!(f, "unknown edge {e}"),
            CdfgError::SelfLoop(n) => write!(f, "self loop on node {n}"),
            CdfgError::WouldCycle { src, dst } => {
                write!(f, "edge {src} -> {dst} would create a cycle")
            }
            CdfgError::Cyclic => write!(f, "graph contains a cycle"),
            CdfgError::ArityMismatch {
                node,
                expected,
                found,
            } => write!(
                f,
                "node {node} expects {expected} data operand(s) but has {found}"
            ),
            CdfgError::UnknownName(name) => write!(f, "unknown node name `{name}`"),
            CdfgError::DuplicateName(name) => write!(f, "duplicate node name `{name}`"),
            CdfgError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for CdfgError {}
