//! Offline stand-in for the `serde_json` crate.
//!
//! Renders and parses the simplified [`serde::Value`] data model of the
//! sibling `serde` stand-in as standards-compliant JSON. Implements exactly
//! the entry points the workspace uses: [`to_string`], [`to_string_pretty`]
//! and [`from_str`]. See `vendor/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching the real crate's shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for values produced by the stand-in data model; the `Result`
/// keeps call sites source-compatible with the real crate.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-indented JSON.
///
/// # Errors
///
/// Never fails; see [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes a value to compact JSON, appending to `out`. Buffer-reuse
/// variant of [`to_string`] for hot paths that serialize per request:
/// callers clear and recycle one `String` instead of allocating a fresh
/// one per call. The bytes appended are identical to [`to_string`]'s.
pub fn to_string_into<T: Serialize + ?Sized>(value: &T, out: &mut String) {
    write_value(&value.to_value(), out, None, 0);
}

/// Serializes an already-built [`Value`] to compact JSON, appending to
/// `out`, without the defensive clone `to_string_into(&value)` would pay
/// (a `Value`'s `to_value()` is a deep copy). Hot paths that hold a tree
/// and a recycled buffer serialize allocation-free through this.
pub fn value_to_string_into(v: &Value, out: &mut String) {
    write_value(v, out, None, 0);
}

/// Appends `s` as a JSON string literal (quoted, escaped) to `out` —
/// the exact bytes [`to_string`] produces for `Value::Str(s)`. Lets
/// hand-rolled envelope writers stay byte-compatible with the tree
/// serializer.
pub fn string_to_json_into(s: &str, out: &mut String) {
    write_string(s, out);
}

/// Appends `f` exactly as [`to_string`] renders `Value::Float(f)`: a
/// decimal point is always embedded so the value re-parses as a float,
/// and non-finite values render as `null`.
pub fn float_to_json_into(f: f64, out: &mut String) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// Parses a JSON document into a value.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    Ok(T::from_value(&from_str_value(s)?)?)
}

/// Parses a JSON document into the raw [`Value`] tree. Equivalent to
/// `from_str::<Value>`, minus that path's `Value::from_value` round trip
/// — which is a deep clone of the freshly parsed tree. Decoders that
/// consume the tree by value start here.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON.
pub fn from_str_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(Error::msg("trailing characters"));
    }
    Ok(v)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        // `fmt::Write` on a `String` formats integers in place; going
        // through `to_string` would cost one heap allocation per number,
        // which dominates the profile of numeric result objects.
        Value::Int(i) => {
            use std::fmt::Write as _;
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            use std::fmt::Write as _;
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => float_to_json_into(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    // Copy maximal runs that need no escaping in one `push_str`; long
    // payload strings (multi-kilobyte design texts) are dominated by such
    // runs, and char-at-a-time pushes show up hot in the request path.
    let bytes = s.as_bytes();
    let mut from = 0;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'"' || b == b'\\' || b < 0x20 {
            out.push_str(&s[from..i]);
            match b {
                b'"' => out.push_str("\\\""),
                b'\\' => out.push_str("\\\\"),
                b'\n' => out.push_str("\\n"),
                b'\r' => out.push_str("\\r"),
                b'\t' => out.push_str("\\t"),
                c => {
                    use std::fmt::Write as _;
                    let _ = write!(out, "\\u{:04x}", u32::from(c));
                }
            }
            i += 1;
            from = i;
        } else {
            i += 1;
        }
    }
    out.push_str(&s[from..]);
    out.push('"');
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.s
            .get(self.i)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.i
            )))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => {
                if self.literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::msg("bad literal"))
                }
            }
            b't' => {
                if self.literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::msg("bad literal"))
                }
            }
            b'f' => {
                if self.literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::msg("bad literal"))
                }
            }
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.i += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.i += 1,
                        b']' => {
                            self.i += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.i += 1;
                let mut fields = Vec::new();
                if self.peek()? == b'}' {
                    self.i += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.i += 1,
                        b'}' => {
                            self.i += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::msg("expected `,` or `}`")),
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        // Scan ahead to the closing quote to size the buffer once:
        // escapes only ever shrink the decoded text, so this reservation
        // is an upper bound and long strings (design texts run to
        // kilobytes) decode with a single allocation instead of doubling
        // growth.
        let mut end = self.i;
        while let Some(&b) = self.s.get(end) {
            match b {
                b'"' => break,
                b'\\' => end += 2,
                _ => end += 1,
            }
        }
        let mut out = String::with_capacity(end.saturating_sub(self.i));
        loop {
            // Copy the maximal run of plain single-byte characters in one
            // `push_str` rather than byte-at-a-time pushes.
            let run = self.i;
            while let Some(&b) = self.s.get(self.i) {
                if b == b'"' || b == b'\\' || b >= 0x80 {
                    break;
                }
                self.i += 1;
            }
            if self.i > run {
                let chunk = std::str::from_utf8(&self.s[run..self.i])
                    .map_err(|_| Error::msg("invalid UTF-8"))?;
                out.push_str(chunk);
            }
            let b = *self
                .s
                .get(self.i)
                .ok_or_else(|| Error::msg("unterminated string"))?;
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .s
                        .get(self.i)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .ok_or_else(|| Error::msg("short \\u escape"))?;
                            self.i += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| Error::msg("bad codepoint"))?,
                            );
                        }
                        _ => return Err(Error::msg("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: find the full char boundary.
                    let start = self.i - 1;
                    let len = utf8_len(b);
                    let bytes = self
                        .s
                        .get(start..start + len)
                        .ok_or_else(|| Error::msg("truncated UTF-8"))?;
                    let s = std::str::from_utf8(bytes).map_err(|_| Error::msg("invalid UTF-8"))?;
                    out.push_str(s);
                    self.i = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.i;
        while self.i < self.s.len()
            && matches!(
                self.s[self.i],
                b'-' | b'+' | b'0'..=b'9' | b'.' | b'e' | b'E'
            )
        {
            self.i += 1;
        }
        let text =
            std::str::from_utf8(&self.s[start..self.i]).map_err(|_| Error::msg("bad number"))?;
        if text.is_empty() {
            return Err(Error::msg(format!("expected value at byte {start}")));
        }
        if !text.contains('.') && !text.contains('e') && !text.contains('E') {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("bad number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\te\u{1F600}".to_owned();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn pretty_output_reparses() {
        let v = vec![vec![1u8], vec![2, 3]];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u8>>>(&json).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("4 2").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"oops").is_err());
    }
}
