//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in containers with no network access and no
//! pre-populated cargo registry, so the real `rand` cannot be fetched. This
//! crate re-implements exactly the API surface the workspace consumes:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`]
//! * [`Rng::gen_range`] over `Range`/`RangeInclusive` of the common integer
//!   types
//! * [`Rng::gen_bool`]
//!
//! The generator is SplitMix64-seeded xoshiro256++ — a high-quality,
//! deterministic, portable PRNG. Streams differ from the real `rand`'s
//! `StdRng` (ChaCha12), which is fine: every in-tree use either asserts
//! statistical properties or only requires determinism in the seed, never a
//! specific stream. See `vendor/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of pseudorandom 64-bit words.
pub trait RngCore {
    /// Returns the next pseudorandom `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next pseudorandom `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with pseudorandom bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` seed (SplitMix64 key expansion, the
    /// standard recommendation of the xoshiro authors).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 high bits give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Marker trait mirroring `rand::distributions::uniform::SampleUniform` for
/// the integer types the workspace samples.
pub trait SampleUniform: Sized + Copy {
    /// Widens to `u64` relative to `Self::MIN` for unbiased sampling.
    fn to_offset(self) -> u64;
    /// Inverse of [`SampleUniform::to_offset`].
    fn from_offset(offset: u64) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_offset(self) -> u64 {
                self as u64
            }
            fn from_offset(offset: u64) -> Self {
                offset as $t
            }
        }
    )*};
}

macro_rules! impl_sample_uniform_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_offset(self) -> u64 {
                (self as $u ^ <$t>::MIN as $u) as u64
            }
            fn from_offset(offset: u64) -> Self {
                (offset as $u ^ <$t>::MIN as $u) as $t
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_sample_uniform_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

/// Unbiased uniform draw from `[0, bound)` by rejection (Lemire-style
/// threshold).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let r = rng.next_u64();
        let (hi, lo) = widening_mul(r, bound);
        if lo >= threshold {
            return hi;
        }
    }
}

fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = u128::from(a) * u128::from(b);
    ((wide >> 64) as u64, wide as u64)
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start.to_offset();
        let hi = self.end.to_offset();
        assert!(lo < hi, "cannot sample empty range");
        T::from_offset(lo + uniform_below(rng, hi - lo))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start().to_offset();
        let hi = self.end().to_offset();
        assert!(lo <= hi, "cannot sample empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_offset(rng.next_u64());
        }
        T::from_offset(lo + uniform_below(rng, span + 1))
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(10u64..=10);
            assert_eq!(z, 10);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u32..1000) == b.gen_range(0u32..1000))
            .count();
        assert!(same < 16);
    }
}
