//! Test execution support: configuration, RNG, and case outcomes.

/// Per-test configuration (mirror of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — redraw, don't fail.
    Reject(&'static str),
    /// The case failed an assertion.
    Fail(String),
}

/// Deterministic test RNG (SplitMix64), seeded from the test's name so every
/// run of a given test replays the same cases.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates the RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-mixed seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit word.
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Unbiased draw from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next();
            let wide = u128::from(r) * u128::from(bound);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
