//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Vec`s with lengths drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Builds a [`VecStrategy`]: each value is a vector whose length is drawn
/// from `len` and whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = Strategy::sample(&self.len, rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
