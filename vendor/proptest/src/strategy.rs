//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A source of pseudorandom test values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug + Clone;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next() as $t;
                }
                lo + (rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add(rng.below(span.wrapping_add(1)) as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// String literals act as regex strategies (mirror of proptest's
/// `&str: Strategy`). A small subset of regex is supported: sequences of
/// literal characters and character classes `[a-z0-9_]`, each optionally
/// repeated with `{m}`, `{m,n}`, `?`, `*` or `+` (unbounded repeats are
/// capped at 8).
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One element: a character class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"))
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    assert!(lo <= hi, "bad range in pattern {pattern:?}");
                    for c in lo..=hi {
                        set.push(c);
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = if chars[i] == '\\' {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        assert!(!alphabet.is_empty(), "empty class in pattern {pattern:?}");

        // Optional repetition suffix.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad repeat count"),
                        n.trim().parse::<usize>().expect("bad repeat count"),
                    ),
                    None => {
                        let m = body.trim().parse::<usize>().expect("bad repeat count");
                        (m, m)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(lo <= hi, "bad repetition in pattern {pattern:?}");
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}

/// A strategy producing one fixed value (mirror of `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: std::fmt::Debug + Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for "any value of `T`" (mirror of `proptest::arbitrary`).
pub struct AnyStrategy<T>(PhantomData<T>);

/// Produces the canonical full-range strategy of a type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized + std::fmt::Debug + Clone {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next() & 1 == 1
    }
}
