//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro, range and `any::<T>()` strategies,
//! `proptest::collection::vec`, `ProptestConfig::with_cases`,
//! [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking** — a failing case reports its inputs but is not
//!   minimized.
//! * **Deterministic seeding** — each test derives its RNG seed from the
//!   test function's name, so runs are reproducible without a
//!   `proptest-regressions` persistence file (existing regression files are
//!   ignored).
//!
//! See `vendor/README.md` for the policy on these stand-ins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __config.cases.saturating_mul(16).max(64);
            while __accepted < __config.cases {
                if __attempts >= __max_attempts {
                    panic!(
                        "proptest `{}`: too many rejected cases ({} accepted of {} wanted)",
                        stringify!($name), __accepted, __config.cases
                    );
                }
                __attempts += 1;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                    $(&$arg),+
                );
                let __outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                match __outcome {
                    Ok(()) => { __accepted += 1; }
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                        "proptest `{}` failed at case {}: {}\n  inputs: {}",
                        stringify!($name), __accepted, msg, __inputs
                    ),
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body; on failure the case
/// fails with its inputs reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)+);
            }
        }
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l
                );
            }
        }
    };
}

/// Rejects the current case (it is re-drawn, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(a in 3usize..10, b in 0u64..=5, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b <= 5);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_len(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_test("fixed");
        let mut b = TestRng::for_test("fixed");
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
        }
    }
}
