//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the workspace's benchmark surface — `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Criterion::bench_function`],
//! [`Bencher::iter`], [`BenchmarkId`] and [`black_box`] — with a simple
//! warmup-plus-measure loop instead of criterion's statistical machinery.
//!
//! Results print as a table. When the `CRITERION_OUT` environment variable
//! names a file, a JSON report is also written there (the repo's
//! `BENCH_*.json` artifacts are produced this way). See `vendor/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    results: Vec<BenchResult>,
    sample_size: usize,
}

#[derive(Debug, Clone)]
struct BenchResult {
    name: String,
    mean_ns: f64,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            results: Vec::new(),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Mirrors the real API; arguments are ignored in the stand-in.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks one closure under a plain name.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let sample_size = self.sample_size;
        self.run_one(name, sample_size, &mut f);
        self
    }

    fn run_one<F>(&mut self, name: String, sample_size: usize, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size,
            mean_ns: 0.0,
            samples: 0,
        };
        f(&mut bencher);
        self.results.push(BenchResult {
            name,
            mean_ns: bencher.mean_ns,
            samples: bencher.samples,
        });
    }

    /// Prints the result table and writes the optional JSON report. Called
    /// by `criterion_main!` after all groups have run.
    pub fn finalize(&self) {
        println!();
        println!("{:<56} {:>14} {:>9}", "benchmark", "mean", "samples");
        for r in &self.results {
            println!(
                "{:<56} {:>14} {:>9}",
                r.name,
                format_ns(r.mean_ns),
                r.samples
            );
        }
        if let Ok(path) = std::env::var("CRITERION_OUT") {
            let mut json = String::from("{\n  \"benchmarks\": [\n");
            for (i, r) in self.results.iter().enumerate() {
                let _ = write!(
                    json,
                    "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"samples\": {}}}{}\n",
                    r.name.replace('"', "\\\""),
                    r.mean_ns,
                    r.samples,
                    if i + 1 < self.results.len() { "," } else { "" }
                );
            }
            json.push_str("  ]\n}\n");
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("criterion stand-in: cannot write {path}: {e}");
            } else {
                println!("\nwrote JSON report to {path}");
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of measured samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks one closure against one input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion
            .run_one(full, sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmarks one closure under a sub-name.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(full, sample_size, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility; results are recorded
    /// eagerly).
    pub fn finish(self) {}
}

/// A display name for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

/// Runs and measures one benchmark body.
pub struct Bencher {
    sample_size: usize,
    mean_ns: f64,
    samples: usize,
}

impl Bencher {
    /// Measures a closure: brief warmup, then `sample_size` timed runs.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup and per-sample batching: very fast bodies are batched so
        // timer resolution doesn't dominate.
        let warmup_start = Instant::now();
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_micros(200) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
            if warmup_start.elapsed() > Duration::from_millis(500) {
                break;
            }
        }
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total += t.elapsed();
        }
        self.samples = self.sample_size;
        self.mean_ns = total.as_nanos() as f64 / (self.sample_size as u64 * batch) as f64;
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::from_parameter(10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].mean_ns > 0.0);
        assert_eq!(c.results[0].name, "g/10");
    }
}
