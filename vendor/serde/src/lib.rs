//! Offline stand-in for the `serde` crate.
//!
//! The real serde cannot be fetched in the offline build containers this
//! workspace targets, so this crate provides a *much* simplified
//! serialization framework with the same trait names. Instead of serde's
//! visitor-based zero-copy data model, [`Serialize`] lowers a value to a
//! self-describing [`Value`] tree and [`Deserialize`] rebuilds from one; the
//! sibling `serde_json` stand-in renders and parses that tree as JSON.
//!
//! Consequences, by design:
//!
//! * No `#[derive(Serialize, Deserialize)]` — in-tree types implement the
//!   traits by hand (see e.g. `localwm-cdfg`'s `serde_impls` module).
//! * The `derive` cargo feature exists but is a no-op, so dependents'
//!   feature declarations keep resolving.
//!
//! See `vendor/README.md` for the policy on these stand-ins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;

/// A self-describing serialized value (the stand-in's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence (`null`, `None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (also carries unsigned values `<= i64::MAX`... larger
    /// ones use [`Value::UInt`]).
    Int(i64),
    /// An unsigned integer above `i64::MAX`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A key-ordered map (`struct`s serialize with their fields in
    /// declaration order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an [`Value::Object`].
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when rebuilding a value from its serialized form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Convenience constructor.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves to a [`Value`] tree.
pub trait Serialize {
    /// Lowers `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::msg(format!("{i} out of range"))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::msg(format!("{u} out of range"))),
                    other => Err(DeError::msg(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(DeError::msg(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::msg(format!("expected 2-tuple, got {other:?}"))),
        }
    }
}

/// Helper for hand-written struct impls: builds a [`Value::Object`].
pub fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Helper for hand-written struct impls: fetches and converts a field.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    let f = v
        .field(name)
        .ok_or_else(|| DeError::msg(format!("missing field `{name}`")))?;
    T::from_value(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_owned().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u8>::from_value(&Option::<u8>::None.to_value()).unwrap(),
            None
        );
        let v: Vec<u16> = vec![1, 2, 3];
        assert_eq!(Vec::<u16>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn object_field_access() {
        let o = object(vec![("a", Value::Int(1)), ("b", Value::Null)]);
        assert_eq!(field::<i32>(&o, "a").unwrap(), 1);
        assert_eq!(field::<Option<i32>>(&o, "b").unwrap(), None);
        assert!(field::<i32>(&o, "missing").is_err());
    }
}
