//! # Local Watermarks
//!
//! A production-quality Rust reproduction of
//! *Kirovski & Potkonjak, "Local Watermarks: Methodology and Application to
//! Behavioral Synthesis"* — intellectual-property protection for behavioral
//! synthesis solutions via many small, locally-detectable watermarks.
//!
//! This umbrella crate re-exports the whole toolkit:
//!
//! * [`cdfg`] — control-data flow graphs, analyses, designs, generators.
//! * [`coloring`] — the paper's graph-coloring instance of the generic
//!   local-watermark paradigm.
//! * [`prng`] — RC4-keyed author-specific bitstreams.
//! * [`timing`] — critical-path analysis, laxity, bounded delay models.
//! * [`sched`] — ASAP/ALAP, list and force-directed scheduling, exact
//!   schedule enumeration.
//! * [`tmatch`] — template matching, covering, and matching enumeration.
//! * [`sim`] — deterministic functional simulation (semantic-preservation
//!   checks for watermark realizations).
//! * [`vliw`] — the 4-issue VLIW evaluation machine.
//! * [`core`] — the watermarking protocols themselves (embedding,
//!   detection, coincidence-probability estimation, attacks).
//! * [`engine`] — memoized [`DesignContext`](engine::DesignContext),
//!   instrumentation probes, and deterministic parallel fan-out.
//! * [`serve`] — the concurrent analysis service (JSON-lines TCP protocol,
//!   worker pool, context cache, live metrics) and its blocking client.
//!
//! # Quickstart
//!
//! ```
//! use local_watermarks::core::{SchedulingWatermarker, Signature, SchedWmConfig};
//! use local_watermarks::cdfg::designs::iir4_parallel;
//!
//! let design = iir4_parallel();
//! let signature = Signature::from_author("alice <alice@example.com>");
//! let wm = SchedulingWatermarker::new(SchedWmConfig::default());
//! let embedded = wm.embed(&design, &signature)?;
//! let evidence = wm.detect(&embedded.schedule, &design, &signature)?;
//! assert!(evidence.is_match());
//! # Ok::<(), local_watermarks::core::WatermarkError>(())
//! ```

pub use localwm_attack as attack;
pub use localwm_cdfg as cdfg;
pub use localwm_coloring as coloring;
pub use localwm_core as core;
pub use localwm_engine as engine;
pub use localwm_gateway as gateway;
pub use localwm_prng as prng;
pub use localwm_sched as sched;
pub use localwm_serve as serve;
pub use localwm_sim as sim;
pub use localwm_timing as timing;
pub use localwm_tmatch as tmatch;
pub use localwm_vliw as vliw;
