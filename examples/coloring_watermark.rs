//! The paper's §III illustration: a local watermark in a graph-coloring
//! solution, embedded in signature-selected random subgraphs.
//!
//! ```sh
//! cargo run --release --example coloring_watermark
//! ```

use local_watermarks::coloring::{
    greedy_coloring, ColoringConfig, ColoringWatermarker, ColoringWmError, UGraph,
};
use local_watermarks::core::Signature;

fn main() -> Result<(), ColoringWmError> {
    let g = UGraph::random(500, 0.03, 2026);
    println!(
        "graph: {} vertices, {} edges",
        g.vertex_count(),
        g.edge_count()
    );
    let plain = greedy_coloring(&g);
    println!(
        "unconstrained greedy coloring: {} colors",
        plain.color_count()
    );

    let wm = ColoringWatermarker::new(ColoringConfig::default());
    let sig = Signature::from_author("alice <alice@example.com>");
    let emb = wm.embed(&g, &sig)?;
    println!(
        "embedded {} must-differ constraints in {} localities; \
         marked coloring uses {} colors",
        emb.constraints.len(),
        emb.centers.len(),
        emb.coloring.color_count()
    );

    let ev = wm.detect(&emb.coloring, &g, &sig)?;
    println!(
        "detection: match = {}, coincidence probability ~ 10^{:.1}",
        ev.is_match(),
        ev.log10_pc
    );
    assert!(ev.is_match());

    // The unconstrained coloring fails (statistically) to carry the mark.
    let miss = wm.detect(&plain, &g, &sig)?;
    println!(
        "unconstrained coloring: match = {} ({:.0}% of constraints hold \
         by chance)",
        miss.is_match(),
        100.0 * miss.satisfied_fraction()
    );
    Ok(())
}
