//! How much tampering does it take to erase a local watermark?
//!
//! ```sh
//! cargo run --release --example attack_resilience
//! ```

use local_watermarks::cdfg::generators::{mediabench, mediabench_apps};
use local_watermarks::core::attack::{
    alterations_to_defeat, perturb_schedule_with, reschedule_with,
};
use local_watermarks::core::{SchedWmConfig, SchedulingWatermarker, Signature, WatermarkError};
use local_watermarks::engine::DesignContext;
use local_watermarks::prng::SplitMix64;

fn main() -> Result<(), WatermarkError> {
    // The analytic argument (paper §IV-A): erasing 100 marked pairs in a
    // 100k-op design needs a redesign-scale perturbation.
    let needed = alterations_to_defeat(50_000, 100, 0.5, 1e-6).expect("well-formed model inputs");
    println!(
        "analytic: erasing a 100-edge mark from a 100k-op design takes \
         ~{needed} pair alterations ({:.0}% of the solution)\n",
        100.0 * needed as f64 / 50_000.0
    );

    // Monte-Carlo on a real embedding.
    let g = mediabench(&mediabench_apps()[5], 0); // GSM
    let wm = SchedulingWatermarker::new(SchedWmConfig {
        k: 20,
        ..SchedWmConfig::default()
    });
    let sig = Signature::from_author("gsm-author");
    let emb = wm.embed(&g, &sig)?;
    println!(
        "embedded K = {} edges in {} ({} ops)",
        emb.edges.len(),
        mediabench_apps()[5].name,
        g.op_count()
    );

    for moves in [0usize, 50, 500, 5000] {
        let mut rng = SplitMix64::new(42);
        let (tampered, applied) =
            perturb_schedule_with(&g, &emb.schedule, emb.available_steps, moves, &mut rng);
        let ev = wm.detect(&tampered, &g, &sig)?;
        println!(
            "after {applied:4} random legal moves: {:5.1}% of constraints \
             survive, match = {}",
            100.0 * ev.satisfied_fraction(),
            ev.is_match()
        );
    }

    // The strongest attack short of redesign: re-synthesize from scratch.
    let ctx = DesignContext::new(g.clone());
    let fresh = reschedule_with(&ctx, &mut SplitMix64::new(7))?;
    let ev = wm.detect(&fresh, &g, &sig)?;
    println!(
        "\nfull re-synthesis: {:.1}% of constraints coincide by chance, \
         match = {}",
        100.0 * ev.satisfied_fraction(),
        ev.is_match()
    );
    Ok(())
}
