//! Watermark a template-matching solution (the paper's §IV-B protocol) on
//! one of the Table II DSP designs.
//!
//! ```sh
//! cargo run --release --example template_watermark
//! ```

use local_watermarks::cdfg::designs::{table2_design, table2_designs};
use local_watermarks::core::{
    module_overhead, Signature, TemplateWatermarker, TmatchWmConfig, WatermarkError,
};
use local_watermarks::timing::UnitTiming;
use local_watermarks::tmatch::{cover, CoverConstraints, Library};

fn main() -> Result<(), WatermarkError> {
    let desc = table2_designs()[2]; // Wavelet filter
    let design = table2_design(&desc);
    let cp = UnitTiming::new(&design).critical_path();
    println!(
        "design: {} — {} operations, critical path {} steps",
        desc.name,
        design.op_count(),
        cp
    );

    let config = TmatchWmConfig {
        z: 3,
        available_steps: 2 * cp,
        ..TmatchWmConfig::default()
    };
    let watermarker = TemplateWatermarker::new(config);
    let signature = Signature::from_author("designer <ip@studio.example>");

    // Embed: three signature-chosen matchings are enforced via PPOs.
    let embedding = watermarker.embed(&design, &signature)?;
    let lib = Library::dsp_default();
    for m in &embedding.forced {
        println!(
            "enforced: {} over {} node(s), rooted at {}",
            lib.template(m.template).name(),
            m.nodes.len(),
            m.root()
        );
    }
    println!("pseudo-primary outputs: {}", embedding.ppos.len());

    // The covering produced under constraints still verifies.
    let evidence = watermarker.detect(&embedding.covering, &design, &signature)?;
    println!(
        "detection on the constrained covering: match = {}, log10 Pc = {:.2}",
        evidence.is_match(),
        evidence.log10_pc
    );
    assert!(evidence.is_match());

    // An unconstrained covering generally does not contain the mark.
    let plain = cover(&design, &lib, &CoverConstraints::default());
    let plain_ev = watermarker.detect(&plain, &design, &signature)?;
    println!(
        "detection on an unconstrained covering: match = {} \
         ({:.0}% of matchings coincide)",
        plain_ev.is_match(),
        100.0 * plain_ev.satisfied_fraction()
    );

    // And the price: module count with and without the watermark.
    let (plain_modules, marked_modules, pct) = module_overhead(&design, &watermarker, &signature)?;
    println!("allocated modules: {plain_modules} -> {marked_modules} ({pct:+.1}% overhead)");
    Ok(())
}
