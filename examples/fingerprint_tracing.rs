//! Fingerprinting: give each licensee its own mark, then trace a leak.
//!
//! ```sh
//! cargo run --release --example fingerprint_tracing
//! ```

use local_watermarks::cdfg::generators::{mediabench, mediabench_apps};
use local_watermarks::core::fingerprint::{distribute, identify};
use local_watermarks::core::{SchedWmConfig, SchedulingWatermarker, Signature, WatermarkError};

fn main() -> Result<(), WatermarkError> {
    let app = mediabench_apps()[3]; // PEGWIT
    let design = mediabench(&app, 0);
    let recipients = ["fab-alpha", "fab-beta", "integrator-gamma"];
    println!(
        "design: {} ({} ops); licensing to {} recipients",
        app.name,
        design.op_count(),
        recipients.len()
    );

    let wm = SchedulingWatermarker::new(SchedWmConfig {
        k: 14,
        ..SchedWmConfig::default()
    });
    let author = Signature::from_author("vendor <legal@vendor.example>");
    let copies = distribute(&wm, &design, &author, &recipients)?;
    for copy in &copies {
        println!(
            "  {}: K = {} edges, schedule length {}",
            copy.recipient,
            copy.embedding.edges.len(),
            copy.embedding.schedule.length()
        );
    }

    // A copy surfaces on the gray market…
    let leaked = &copies[1].embedding.schedule;
    let traced = identify(&wm, leaked, &design, &author, &recipients)?
        .expect("a distributed copy must trace");
    println!(
        "\nleak traced to `{}` (coincidence probability ~ 10^{:.1})",
        traced.recipient, traced.evidence.log10_pc
    );
    assert_eq!(traced.recipient, "fab-beta");

    // A clean-room schedule traces to nobody.
    let ctx = local_watermarks::engine::DesignContext::new(design.clone());
    let fresh = local_watermarks::core::attack::reschedule_with(
        &ctx,
        &mut local_watermarks::prng::SplitMix64::new(1234),
    )
    .map_err(WatermarkError::Schedule)?;
    let nobody = identify(&wm, &fresh, &design, &author, &recipients)?;
    println!(
        "independent re-synthesis traces to: {:?}",
        nobody.map(|t| t.recipient)
    );
    Ok(())
}
