//! Quickstart: watermark a design's schedule and detect the mark.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use local_watermarks::cdfg::designs::iir4_parallel;
use local_watermarks::core::{SchedWmConfig, SchedulingWatermarker, Signature, WatermarkError};

fn main() -> Result<(), WatermarkError> {
    // 1. The design: the paper's fourth-order parallel IIR filter.
    let design = iir4_parallel();
    println!(
        "design: {} operations, {} edges",
        design.op_count(),
        design.edge_count()
    );

    // 2. The author's signature drives every selection the watermark makes.
    let signature = Signature::from_author("alice <alice@example.com>");

    // 3. Embed: signature-specific temporal edges are added and a schedule
    //    is synthesized under them.
    let watermarker = SchedulingWatermarker::new(SchedWmConfig::default());
    let embedding = watermarker.embed(&design, &signature)?;
    println!(
        "embedded {} temporal edge(s) across {} localit(y/ies); schedule \
         length {} of {} steps",
        embedding.edges.len(),
        embedding.domains.len(),
        embedding.schedule.length(),
        embedding.available_steps,
    );

    // 4. Detect: re-derive the constraints from the signature alone and
    //    check the suspected schedule against them.
    let evidence = watermarker.detect(&embedding.schedule, &design, &signature)?;
    println!(
        "detection: match = {}, coincidence probability ~ 10^{:.1}",
        evidence.is_match(),
        evidence.log10_pc
    );
    assert!(evidence.is_match());

    // 5. A different signature does not verify.
    let impostor = Signature::from_author("mallory");
    let wrong = watermarker.detect(&embedding.schedule, &design, &impostor)?;
    println!(
        "impostor signature: match = {} ({:.0}% of its constraints hold)",
        wrong.is_match(),
        100.0 * wrong.satisfied_fraction()
    );
    assert!(!wrong.is_match());
    Ok(())
}
