//! Critical-path analysis under bounded and dynamically bounded delay
//! models — the timing substrate both watermarking protocols lean on
//! ("compute the critical path C of the CDFG"), generalized to interval
//! delays.
//!
//! ```sh
//! cargo run --release --example bounded_delay_timing
//! ```

use local_watermarks::cdfg::designs::iir4_parallel;
use local_watermarks::cdfg::generators::{layered, LayeredConfig};
use local_watermarks::timing::{
    bounded_critical_path, possibly_critical, DynamicBounds, KindBounds, UnitTiming,
};

fn main() {
    // Unit-delay timing: the control-step model of behavioral synthesis.
    let iir = iir4_parallel();
    let timing = UnitTiming::new(&iir);
    println!(
        "IIR4: critical path {} control steps; A9 laxity {}, D11 laxity {}",
        timing.critical_path(),
        timing.laxity(iir.node_by_name("A9").expect("named")),
        timing.laxity(iir.node_by_name("D11").expect("named")),
    );

    // Bounded delays: each op kind gets an interval; the analysis yields
    // exact lower/upper bounds on the true critical path.
    let model = KindBounds::uniform(1, 2).with(
        local_watermarks::cdfg::OpKind::ConstMul,
        local_watermarks::timing::DelayInterval::new(2, 4),
    );
    let cp = bounded_critical_path(&iir, &model);
    println!(
        "IIR4 under bounded delays: critical path in [{}, {}]",
        cp.lo, cp.hi
    );

    // Dynamically bounded delays: intervals widen with fanin (input-
    // dependent switching), narrowing which nodes can possibly be critical.
    let g = layered(&LayeredConfig {
        ops: 400,
        layers: 24,
        ..Default::default()
    });
    let unit_crit = possibly_critical(&g, &KindBounds::unit()).len();
    let dynamic = DynamicBounds::new(KindBounds::uniform(1, 2), 1);
    let dyn_crit = possibly_critical(&g, &dynamic).len();
    let cp_dyn = bounded_critical_path(&g, &dynamic);
    println!(
        "400-op kernel: {} nodes critical under unit delays; {} possibly \
         critical under the dynamic model (circuit delay in [{}, {}]) — \
         input-dependent bounds shift criticality toward high-fanin paths",
        unit_crit, dyn_crit, cp_dyn.lo, cp_dyn.hi
    );
    assert!(dyn_crit > 0 && cp_dyn.hi >= cp_dyn.lo);
}
