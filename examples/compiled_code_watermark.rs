//! The paper's Table I scenario end to end: watermark a compiled media
//! kernel's schedule and measure the VLIW performance cost.
//!
//! ```sh
//! cargo run --release --example compiled_code_watermark
//! ```

use local_watermarks::cdfg::generators::{mediabench, mediabench_apps};
use local_watermarks::core::{SchedWmConfig, SchedulingWatermarker, Signature, WatermarkError};
use local_watermarks::vliw::{overhead_percent, Machine};

fn main() -> Result<(), WatermarkError> {
    // A G721-sized kernel (758 operations), as compiled for the paper's
    // 4-issue VLIW machine.
    let app = mediabench_apps()[1];
    let program = mediabench(&app, 0);
    println!(
        "workload: {} with {} operations",
        app.name,
        program.op_count()
    );

    // Constrain 2% of the operations, like Table I's first configuration.
    let watermarker = SchedulingWatermarker::new(SchedWmConfig::with_node_fraction(0.02));
    let signature = Signature::from_author("vendor <legal@vendor.example>");
    let embedding = watermarker.embed(&program, &signature)?;
    println!(
        "embedded K = {} temporal edges over {} localities",
        embedding.edges.len(),
        embedding.domains.len()
    );

    // The constraints are carried into the binary as unit operations
    // ("additions with variables assigned to zero at runtime").
    let realized = SchedulingWatermarker::realize_as_unit_ops(&program, &embedding.edges);
    let machine = Machine::paper_default();
    let perf = overhead_percent(&program, &realized, &machine);
    println!(
        "VLIW cycles: {} -> {} ({:+.2}% overhead)",
        perf.base_cycles,
        perf.marked_cycles,
        perf.overhead_percent()
    );

    // Detection works from the schedule alone.
    let evidence = watermarker.detect(&embedding.schedule, &program, &signature)?;
    println!(
        "detection: match = {}, proof strength ~ {:.0} decimal digits",
        evidence.is_match(),
        evidence.proof_strength_digits()
    );
    assert!(evidence.is_match());

    // After stripping the temporal edges, the *specification* is clean —
    // the evidence lives purely in the solution.
    let mut shipped = embedding.marked.clone();
    let stripped = shipped.strip_temporal_edges();
    println!(
        "shipped specification: {} watermark edges stripped, {} edges remain \
         (original had {})",
        stripped,
        shipped.edge_count(),
        program.edge_count()
    );
    Ok(())
}
